package stubby

import (
	"context"
	"time"

	"rpcscale/internal/trace"
)

// ClientInterceptor wraps outgoing calls; interceptors compose
// outermost-first. The CallFunc performs the actual (or next) call.
type ClientInterceptor func(ctx context.Context, method string, payload []byte, next CallFunc) ([]byte, error)

// CallFunc is the signature of a unary call.
type CallFunc func(ctx context.Context, method string, payload []byte) ([]byte, error)

// Intercepted returns a CallFunc that applies the interceptors around the
// channel's Call, outermost first.
func (c *Channel) Intercepted(interceptors ...ClientInterceptor) CallFunc {
	var invoke CallFunc = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
		return c.Call(ctx, method, payload)
	}
	for i := len(interceptors) - 1; i >= 0; i-- {
		mid, next := interceptors[i], invoke
		invoke = func(ctx context.Context, method string, payload []byte) ([]byte, error) {
			return mid(ctx, method, payload, next)
		}
	}
	return invoke
}

// RetryPolicy configures automatic retries of transient failures.
// Production Stubby retries Unavailable-class errors with exponential
// backoff; errors like NoPermission or InvalidArgument are permanent and
// never retried.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (including the first). <=1 disables.
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the delay.
	MaxBackoff time.Duration
	// RetryableCodes lists the codes worth retrying. Nil selects the
	// default transient set (Unavailable, NoResource, DeadlineExceeded
	// excluded — the deadline is gone).
	RetryableCodes []trace.ErrorCode
	// Budget, when non-nil, caps retry amplification: every attempt
	// outcome feeds the token bucket and a retry is only issued while
	// the budget allows it. Share one budget across the channels of a
	// pool so the cap covers the aggregate stream.
	Budget *RetryBudget
}

// DefaultRetryPolicy retries transient failures up to 3 attempts.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	}
}

func (p RetryPolicy) retryable(code trace.ErrorCode) bool {
	if p.RetryableCodes == nil {
		return code == trace.Unavailable || code == trace.NoResource
	}
	for _, c := range p.RetryableCodes {
		if c == code {
			return true
		}
	}
	return false
}

// nextBackoff advances an exponential backoff: the delay doubles per
// attempt and saturates at max (when max > 0).
func nextBackoff(cur, max time.Duration) time.Duration {
	next := cur * 2
	if max > 0 && next > max {
		next = max
	}
	return next
}

// WithRetry returns a client interceptor implementing the policy.
func WithRetry(policy RetryPolicy) ClientInterceptor {
	return WithRetryObserved(policy, nil)
}

// WithRetryObserved is WithRetry with retry admissions and budget
// suppressions reported to obs (nil disables reporting).
func WithRetryObserved(policy RetryPolicy, obs RobustnessObserver) ClientInterceptor {
	return func(ctx context.Context, method string, payload []byte, next CallFunc) ([]byte, error) {
		return retryCall(ctx, method, payload, policy, obs, next)
	}
}

// retryCall runs the retry loop shared by the interceptor form and the
// channel-integrated form (Options.Retry). Each attempt's number is
// published in the context so the fault plane can key per-attempt
// decisions; each outcome feeds the budget when one is configured.
func retryCall(ctx context.Context, method string, payload []byte, policy RetryPolicy, obs RobustnessObserver, next CallFunc) ([]byte, error) {
	var lastErr error
	backoff := policy.BaseBackoff
	attempts := policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, codeToError(cancelCode(ctx))
			}
			backoff = nextBackoff(backoff, policy.MaxBackoff)
		}
		out, err := next(contextWithAttempt(ctx, uint32(attempt)), method, payload)
		if policy.Budget != nil {
			policy.Budget.OnOutcome(err != nil)
		}
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !policy.retryable(Code(err)) {
			return nil, err
		}
		if attempt+1 >= attempts {
			break
		}
		if policy.Budget != nil && !policy.Budget.AllowRetry() {
			if obs != nil {
				obs.RetrySuppressed(method)
			}
			return nil, lastErr
		}
		if obs != nil {
			obs.RetryAttempt(method)
		}
	}
	return nil, lastErr
}
