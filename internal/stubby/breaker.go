package stubby

import (
	"context"
	"sync"
	"time"

	"rpcscale/internal/trace"
)

// BreakerState is the circuit breaker's position.
type BreakerState uint8

// Circuit breaker states.
const (
	// BreakerClosed passes calls through, counting failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails calls fast without touching the network.
	BreakerOpen
	// BreakerHalfOpen admits limited probes to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker. The zero value selects the
// defaults noted on each field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	FailureThreshold int
	// Cooldown is how long an open circuit waits before admitting
	// half-open probes (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// circuit again (default 1).
	HalfOpenProbes int
	// TripCodes lists the error codes that count as failures. Nil
	// selects the overload set: Unavailable, NoResource,
	// DeadlineExceeded.
	TripCodes []trace.ErrorCode

	// now substitutes the clock in tests.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

func (c *BreakerConfig) trips(code trace.ErrorCode) bool {
	if c.TripCodes == nil {
		return code == trace.Unavailable || code == trace.NoResource || code == trace.DeadlineExceeded
	}
	for _, t := range c.TripCodes {
		if t == code {
			return true
		}
	}
	return false
}

// ErrCircuitOpen is returned (wrapped in a *Status) when the breaker
// fails a call fast.
var ErrCircuitOpen = &Status{Code: trace.Unavailable, Message: "circuit breaker open"}

// Breaker is a per-method circuit breaker: each method tracked by one
// Breaker trips independently, since production incidents are usually
// method- or service-scoped, not channel-scoped. Create one Breaker per
// channel (stubby does this when Options.Breaker is set) to get the
// per-(channel, method) granularity the paper's managed-RPC framing
// calls for. It is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	obs RobustnessObserver

	mu      sync.Mutex
	methods map[string]*methodBreaker
}

type methodBreaker struct {
	state     BreakerState
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	openedAt  time.Time // when the circuit last opened
	probing   bool      // a half-open probe is in flight
}

// NewBreaker returns a breaker; obs (optional) observes state
// transitions.
func NewBreaker(cfg BreakerConfig, obs RobustnessObserver) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), obs: obs, methods: make(map[string]*methodBreaker)}
}

// State returns the current state for a method.
func (b *Breaker) State(method string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m := b.methods[method]; m != nil {
		return m.state
	}
	return BreakerClosed
}

// Allow reports whether a call to method may proceed; when it returns
// false the caller should fail fast with ErrCircuitOpen.
func (b *Breaker) Allow(method string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.method(method)
	switch m.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.now().Sub(m.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transition(method, m, BreakerHalfOpen)
		m.successes = 0
		m.probing = true
		return true
	default: // BreakerHalfOpen
		if m.probing {
			return false // one probe at a time
		}
		m.probing = true
		return true
	}
}

// Record feeds one call outcome for method into the breaker.
func (b *Breaker) Record(method string, err error) {
	code := Code(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.method(method)
	failed := err != nil && b.cfg.trips(code)
	switch m.state {
	case BreakerClosed:
		if !failed {
			m.failures = 0
			return
		}
		m.failures++
		if m.failures >= b.cfg.FailureThreshold {
			b.transition(method, m, BreakerOpen)
			m.openedAt = b.cfg.now()
			m.failures = 0
		}
	case BreakerHalfOpen:
		m.probing = false
		if failed {
			b.transition(method, m, BreakerOpen)
			m.openedAt = b.cfg.now()
			m.successes = 0
			return
		}
		m.successes++
		if m.successes >= b.cfg.HalfOpenProbes {
			b.transition(method, m, BreakerClosed)
			m.failures = 0
		}
	case BreakerOpen:
		// A straggler from before the trip; the cooldown clock stands.
	}
}

// method returns (creating if needed) the per-method state. Caller
// holds b.mu.
func (b *Breaker) method(name string) *methodBreaker {
	m := b.methods[name]
	if m == nil {
		m = &methodBreaker{}
		b.methods[name] = m
	}
	return m
}

// transition flips the state and notifies the observer. Caller holds
// b.mu; the observer must not call back into the breaker.
func (b *Breaker) transition(method string, m *methodBreaker, to BreakerState) {
	from := m.state
	m.state = to
	if b.obs != nil {
		b.obs.BreakerTransition(method, from, to)
	}
}

// Wrap returns a CallFunc that applies the breaker around next: an open
// circuit fails fast with ErrCircuitOpen and every completed call's
// outcome is recorded. The breaker sits outside the retry layer so an
// open circuit spends no attempts at all — failing fast is the point.
func (b *Breaker) Wrap(next CallFunc) CallFunc {
	return func(ctx context.Context, method string, payload []byte) ([]byte, error) {
		if !b.Allow(method) {
			return nil, ErrCircuitOpen
		}
		out, err := next(ctx, method, payload)
		b.Record(method, err)
		return out, err
	}
}

// WithBreaker returns a client interceptor form of the breaker for
// callers composing chains by hand via Channel.Intercepted.
func WithBreaker(b *Breaker) ClientInterceptor {
	return func(ctx context.Context, method string, payload []byte, next CallFunc) ([]byte, error) {
		return b.Wrap(next)(ctx, method, payload)
	}
}
