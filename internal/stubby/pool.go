package stubby

import (
	"context"

	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/trace"
)

// Pool is a client-side channel pool: N connections to one server with a
// pick policy per call. Production RPC stacks multiplex heavily but still
// run several connections per backend to avoid head-of-line blocking on
// one TCP stream; the pool is also the natural place for subsetting.
type Pool struct {
	opts          Options
	addr          string
	serverCluster string

	mu       sync.Mutex
	channels []*Channel
	next     atomic.Uint64

	closed bool
}

// NewPool dials size connections to addr. It fails if no connection can
// be established; partial pools are allowed when at least one dial
// succeeds.
func NewPool(addr, serverCluster string, size int, opts Options) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{opts: opts, addr: addr, serverCluster: serverCluster}
	var firstErr error
	for i := 0; i < size; i++ {
		ch, err := Dial(addr, serverCluster, opts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		p.channels = append(p.channels, ch)
	}
	if len(p.channels) == 0 {
		return nil, firstErr
	}
	return p, nil
}

// Size returns the number of live channels.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.channels)
}

// pick selects the next channel round-robin, or through Options.PoolPicker
// when one is configured.
func (p *Pool) pick() (*Channel, error) {
	p.mu.Lock()
	if p.closed || len(p.channels) == 0 {
		p.mu.Unlock()
		return nil, ErrUnavailable
	}
	if picker := p.opts.PoolPicker; picker != nil {
		// Snapshot the members so the picker (user code) runs outside the
		// pool lock; replace() may mutate the slice concurrently.
		members := append([]*Channel(nil), p.channels...)
		p.mu.Unlock()
		if ch := picker(members); ch != nil {
			return ch, nil
		}
		return members[0], nil
	}
	i := int(p.next.Add(1)) % len(p.channels)
	ch := p.channels[i]
	p.mu.Unlock()
	return ch, nil
}

// Addr returns the backend address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// InFlight returns the number of calls awaiting responses across all
// members — the client-side half of the pool's load estimate.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	channels := append([]*Channel(nil), p.channels...)
	p.mu.Unlock()
	n := 0
	for _, ch := range channels {
		n += ch.InFlight()
	}
	return n
}

// ServerLoad returns the backend's most recently piggybacked load report:
// the maximum across members, since each channel's copy goes stale
// independently and the freshest pessimistic signal balances best.
func (p *Pool) ServerLoad() int {
	p.mu.Lock()
	channels := append([]*Channel(nil), p.channels...)
	p.mu.Unlock()
	load := 0
	for _, ch := range channels {
		if l := ch.ServerLoad(); l > load {
			load = l
		}
	}
	return load
}

// Load combines the client-side in-flight count with the server's
// piggybacked report. It implements the loadbalance.Endpoint interface, so
// the same policies that balance simulated machines balance live pools.
func (p *Pool) Load() int {
	return p.InFlight() + p.ServerLoad()
}

// Call issues a unary RPC on one pool member. A channel that died is
// replaced in the background and the call is retried once on another
// member.
func (p *Pool) Call(ctx context.Context, method string, payload []byte, opts ...CallOption) ([]byte, error) {
	for attempt := 0; attempt < 2; attempt++ {
		ch, err := p.pick()
		if err != nil {
			return nil, err
		}
		out, err := ch.Call(ctx, method, payload, opts...)
		if err == nil {
			return out, nil
		}
		if Code(err) != trace.Unavailable {
			return nil, err
		}
		p.replace(ch)
	}
	return nil, ErrUnavailable
}

// CallHedged issues a hedged call where the hedge leg goes to a
// *different* pool member — the cross-replica hedging the paper's §4.4
// describes (a same-server hedge shares the straggler's fate).
func (p *Pool) CallHedged(ctx context.Context, method string, payload []byte, hedgeDelay time.Duration) ([]byte, error) {
	primary, err := p.pick()
	if err != nil {
		return nil, err
	}
	secondary, err := p.pick()
	if err != nil || secondary == primary {
		return primary.CallHedged(ctx, method, payload, hedgeDelay)
	}
	type result struct {
		payload []byte
		err     error
	}
	results := make(chan result, 2)
	primCtx, cancelPrim := context.WithCancel(ctx)
	defer cancelPrim()
	go func() {
		out, err := primary.call(primCtx, method, payload, false)
		results <- result{out, err}
	}()
	timer := time.NewTimer(hedgeDelay)
	defer timer.Stop()
	var hedgeCancel context.CancelFunc
	defer func() {
		if hedgeCancel != nil {
			hedgeCancel()
		}
	}()
	hedged := false
	launchHedge := func() {
		hedged = true
		var hctx context.Context
		hctx, hedgeCancel = context.WithCancel(ctx)
		go func() {
			out, err := secondary.call(hctx, method, payload, true)
			results <- result{out, err}
		}()
	}
	var firstErr error
	seen := 0
	for {
		select {
		case <-timer.C:
			if !hedged {
				launchHedge()
			}
		case r := <-results:
			if r.err == nil {
				cancelPrim()
				if hedgeCancel != nil {
					hedgeCancel()
				}
				return r.payload, nil
			}
			if firstErr == nil || Code(firstErr) == trace.Cancelled {
				firstErr = r.err
			}
			seen++
			expected := 1
			if hedged {
				expected = 2
			}
			if seen >= expected {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, codeToError(cancelCode(ctx))
		}
	}
}

// replace drops a dead channel and dials a replacement.
func (p *Pool) replace(dead *Channel) {
	p.mu.Lock()
	for i, ch := range p.channels {
		if ch == dead {
			p.channels = append(p.channels[:i], p.channels[i+1:]...)
			break
		}
	}
	closed := p.closed
	p.mu.Unlock()
	dead.Close()
	if closed {
		return
	}
	if ch, err := Dial(p.addr, p.serverCluster, p.opts); err == nil {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			ch.Close()
			return
		}
		p.channels = append(p.channels, ch)
		p.mu.Unlock()
	}
}

// CallStreamAny starts a server-streaming call on one pool member.
func (p *Pool) CallStreamAny(ctx context.Context, method string, payload []byte) (*ServerStream, error) {
	ch, err := p.pick()
	if err != nil {
		return nil, err
	}
	return ch.CallStream(ctx, method, payload)
}

// Ping measures RTT on one member.
func (p *Pool) Ping(ctx context.Context) (time.Duration, error) {
	ch, err := p.pick()
	if err != nil {
		return 0, err
	}
	return ch.Ping(ctx)
}

// Close shuts down every member.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	channels := p.channels
	p.channels = nil
	p.mu.Unlock()
	for _, ch := range channels {
		ch.Close()
	}
}
