package stubby

import (
	"context"
	"errors"
	"testing"
	"time"

	"rpcscale/internal/trace"
)

// TestExportedBoundariesReturnStatusErrors is the runtime half of the
// statuserr invariant (the rpclint statuserr analyzer is the static
// half): every exported RPC-path entry point, driven into each of its
// failure modes, must return a canonical *Status error so
// trace.Collector.SeenByCode classifies the failure instead of lumping
// it into Internal. The analyzer catches direct bare constructors; this
// table covers errors propagated through variables, which a syntactic
// check cannot.
func TestExportedBoundariesReturnStatusErrors(t *testing.T) {
	live, _ := testSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler})

	// A dialed-then-closed channel: every call on it must fail Unavailable.
	dead, _ := testSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler})
	dead.Close()

	deadPool, _ := poolSetup(t, Options{}, map[string]Handler{"svc/Echo": echoHandler}, 2)
	deadPool.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	bg := context.Background()
	cases := []struct {
		name string
		want trace.ErrorCode // trace.OK = any non-OK code is acceptable
		call func() error
	}{
		{"Dial/refused", trace.Unavailable, func() error {
			// Port 1 is reserved and unbound; the kernel refuses immediately.
			_, err := Dial("127.0.0.1:1", "t", Options{})
			return err
		}},
		{"NewPool/all-dials-fail", trace.Unavailable, func() error {
			_, err := NewPool("127.0.0.1:1", "t", 2, Options{})
			return err
		}},
		{"Call/unregistered-method", trace.EntityNotFound, func() error {
			_, err := live.Call(bg, "svc/NoSuchMethod", nil)
			return err
		}},
		{"Call/closed-channel", trace.Unavailable, func() error {
			_, err := dead.Call(bg, "svc/Echo", nil)
			return err
		}},
		{"Call/expired-deadline", trace.DeadlineExceeded, func() error {
			ctx, cancel := context.WithTimeout(bg, -time.Second)
			defer cancel()
			_, err := live.Call(ctx, "svc/Echo", nil)
			return err
		}},
		{"CallHedged/closed-channel", trace.Unavailable, func() error {
			_, err := dead.CallHedged(bg, "svc/Echo", nil, time.Millisecond)
			return err
		}},
		{"CallStream/closed-channel", trace.Unavailable, func() error {
			_, err := dead.CallStream(bg, "svc/Echo", nil)
			return err
		}},
		{"Ping/closed-channel", trace.Unavailable, func() error {
			_, err := dead.Ping(bg)
			return err
		}},
		{"Ping/cancelled-context", trace.Cancelled, func() error {
			_, err := live.Ping(cancelled)
			return err
		}},
		{"Pool.Call/after-close", trace.Unavailable, func() error {
			_, err := deadPool.Call(bg, "svc/Echo", nil)
			return err
		}},
		{"Pool.CallHedged/after-close", trace.Unavailable, func() error {
			_, err := deadPool.CallHedged(bg, "svc/Echo", nil, time.Millisecond)
			return err
		}},
		{"Pool.CallStreamAny/after-close", trace.Unavailable, func() error {
			_, err := deadPool.CallStreamAny(bg, "svc/Echo", nil)
			return err
		}},
		{"Pool.Ping/after-close", trace.Unavailable, func() error {
			_, err := deadPool.Ping(bg)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("expected an error")
			}
			var st *Status
			if !errors.As(err, &st) {
				t.Fatalf("boundary returned a non-status error: %v (%T)", err, err)
			}
			if st.Code == trace.OK {
				t.Fatalf("status error with code OK: %v", err)
			}
			if tc.want != trace.OK && st.Code != tc.want {
				t.Fatalf("code = %v, want %v (err: %v)", st.Code, tc.want, err)
			}
		})
	}
}
