package stubby

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rpcscale/internal/trace"
)

// streamSetup starts a server with one streaming handler and returns a
// connected channel.
func streamSetup(t *testing.T, method string, h StreamHandler) *Channel {
	t.Helper()
	opts := Options{Workers: 8}
	srv := NewServer(opts)
	srv.RegisterStream(method, h)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	ch, err := Dial(l.Addr().String(), "stream-test", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ch.Close()
		srv.Close()
	})
	return ch
}

func TestStreamBasic(t *testing.T) {
	ch := streamSetup(t, "svc/List", func(ctx context.Context, p []byte, send func([]byte) error) error {
		for i := 0; i < 5; i++ {
			if err := send([]byte(fmt.Sprintf("%s-%d", p, i))); err != nil {
				return err
			}
		}
		return nil
	})
	st, err := ch.CallStream(context.Background(), "svc/List", []byte("item"))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		msg, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(msg))
	}
	if len(got) != 5 || got[0] != "item-0" || got[4] != "item-4" {
		t.Fatalf("got %v", got)
	}
	// Recv after EOF keeps returning EOF.
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("post-EOF Recv = %v", err)
	}
}

func TestStreamEmpty(t *testing.T) {
	ch := streamSetup(t, "svc/Empty", func(ctx context.Context, p []byte, send func([]byte) error) error {
		return nil
	})
	st, err := ch.CallStream(context.Background(), "svc/Empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("empty stream Recv = %v", err)
	}
}

func TestStreamServerError(t *testing.T) {
	ch := streamSetup(t, "svc/Fail", func(ctx context.Context, p []byte, send func([]byte) error) error {
		if err := send([]byte("one")); err != nil {
			return err
		}
		return Errorf(trace.EntityNotFound, "ran out")
	})
	st, err := ch.CallStream(context.Background(), "svc/Fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := st.Recv(); err != nil || string(msg) != "one" {
		t.Fatalf("first item: %q %v", msg, err)
	}
	_, err = st.Recv()
	if Code(err) != trace.EntityNotFound {
		t.Fatalf("final status = %v", err)
	}
}

func TestStreamClientClose(t *testing.T) {
	started := make(chan struct{}, 1)
	cancelled := make(chan struct{})
	ch := streamSetup(t, "svc/Forever", func(ctx context.Context, p []byte, send func([]byte) error) error {
		started <- struct{}{}
		for i := 0; ; i++ {
			if err := send([]byte("x")); err != nil {
				close(cancelled)
				return err
			}
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Done():
				close(cancelled)
				return ctx.Err()
			}
		}
	})
	st, err := ch.CallStream(context.Background(), "svc/Forever", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := st.Recv(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("server handler not cancelled by stream Close")
	}
	if _, err := st.Recv(); Code(err) != trace.Cancelled {
		t.Fatalf("Recv after Close = %v", err)
	}
}

func TestStreamDeadline(t *testing.T) {
	ch := streamSetup(t, "svc/Slow", func(ctx context.Context, p []byte, send func([]byte) error) error {
		<-ctx.Done()
		return ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	st, err := ch.CallStream(ctx, "svc/Slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	if err == nil || err == io.EOF {
		t.Fatalf("expected deadline error, got %v", err)
	}
}

func TestStreamLargeVolume(t *testing.T) {
	const items = 500
	payload := make([]byte, 2048)
	ch := streamSetup(t, "svc/Bulk", func(ctx context.Context, p []byte, send func([]byte) error) error {
		for i := 0; i < items; i++ {
			if err := send(payload); err != nil {
				return err
			}
		}
		return nil
	})
	st, err := ch.CallStream(context.Background(), "svc/Bulk", nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		msg, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(msg) != len(payload) {
			t.Fatalf("item %d has %d bytes", n, len(msg))
		}
		n++
	}
	if n != items {
		t.Fatalf("received %d items, want %d", n, items)
	}
}

func TestStreamChannelCloseFailsStream(t *testing.T) {
	started := make(chan struct{}, 1)
	ch := streamSetup(t, "svc/Hang", func(ctx context.Context, p []byte, send func([]byte) error) error {
		started <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	})
	st, err := ch.CallStream(context.Background(), "svc/Hang", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ch.Close()
	done := make(chan error, 1)
	go func() {
		_, err := st.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || err == io.EOF {
			t.Fatalf("Recv after channel close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream Recv hung after channel close")
	}
}

func TestStreamUnknownMethod(t *testing.T) {
	ch, _ := testSetup(t, Options{}, nil) // unary server, no stream handlers
	st, err := ch.CallStream(context.Background(), "svc/Nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv()
	if Code(err) != trace.EntityNotFound {
		t.Fatalf("unknown stream method = %v", err)
	}
}

func TestStreamAndUnaryCoexist(t *testing.T) {
	opts := Options{Workers: 8}
	srv := NewServer(opts)
	srv.Register("svc/Echo", echoHandler)
	srv.RegisterStream("svc/Stream", func(ctx context.Context, p []byte, send func([]byte) error) error {
		return send([]byte("si"))
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	ch, err := Dial(l.Addr().String(), "x", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	var unaryErrs atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := ch.Call(context.Background(), "svc/Echo", []byte("u")); err != nil {
				unaryErrs.Add(1)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		st, err := ch.CallStream(context.Background(), "svc/Stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		if msg, err := st.Recv(); err != nil || string(msg) != "si" {
			t.Fatalf("stream item %q %v", msg, err)
		}
		if _, err := st.Recv(); err != io.EOF {
			t.Fatalf("stream end = %v", err)
		}
	}
	<-done
	if unaryErrs.Load() != 0 {
		t.Fatalf("%d unary calls failed alongside streams", unaryErrs.Load())
	}
}

func TestRegisterStreamConflicts(t *testing.T) {
	srv := NewServer(Options{})
	defer srv.Close()
	srv.Register("svc/M", echoHandler)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stream over unary registration should panic")
			}
		}()
		srv.RegisterStream("svc/M", func(context.Context, []byte, func([]byte) error) error { return nil })
	}()
	srv.RegisterStream("svc/S", func(context.Context, []byte, func([]byte) error) error { return nil })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unary over stream registration should panic")
			}
		}()
		srv.Register("svc/S", echoHandler)
	}()
}
