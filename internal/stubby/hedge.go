package stubby

import (
	"context"
	"time"

	"rpcscale/internal/trace"
)

// CallHedged issues a hedged unary RPC: the primary call goes out
// immediately, and if no response arrives within hedgeDelay a duplicate
// ("hedge") is issued. The first successful response wins and the loser is
// cancelled.
//
// Hedging is the tail-latency strategy of Dean & Barroso's "The Tail at
// Scale"; the paper finds it responsible for most Cancelled errors in the
// fleet (45% of all errors, 55% of wasted cycles, §4.4). Each leg emits
// its own span, so the cancellation economics are visible in the trace
// data exactly as they are in production.
func (c *Channel) CallHedged(ctx context.Context, method string, payload []byte, hedgeDelay time.Duration) ([]byte, error) {
	type result struct {
		payload []byte
		err     error
	}
	primCtx, cancelPrim := context.WithCancel(ctx)
	defer cancelPrim()
	results := make(chan result, 2)

	go func() {
		out, err := c.call(primCtx, method, payload, false)
		results <- result{out, err}
	}()

	timer := time.NewTimer(hedgeDelay)
	defer timer.Stop()

	var hedgeCancel context.CancelFunc
	hedgeLaunched := false
	launchHedge := func() {
		hedgeLaunched = true
		var hctx context.Context
		hctx, hedgeCancel = context.WithCancel(ctx)
		go func() {
			out, err := c.call(hctx, method, payload, true)
			results <- result{out, err}
		}()
	}
	defer func() {
		if hedgeCancel != nil {
			hedgeCancel()
		}
	}()

	var firstErr error
	errSeen := 0
	for {
		select {
		case <-timer.C:
			if !hedgeLaunched {
				launchHedge()
			}
		case r := <-results:
			if r.err == nil {
				// Winner: cancel the other leg and return.
				cancelPrim()
				if hedgeCancel != nil {
					hedgeCancel()
				}
				return r.payload, nil
			}
			// A losing leg that was cancelled by us is not the caller's
			// error; only surface it if everything fails.
			if firstErr == nil || Code(firstErr) == trace.Cancelled {
				if Code(r.err) != trace.Cancelled || firstErr == nil {
					firstErr = r.err
				}
			}
			errSeen++
			expected := 1
			if hedgeLaunched {
				expected = 2
			}
			if errSeen >= expected {
				if !hedgeLaunched {
					// Primary failed before the hedge fired; fail fast.
					return nil, firstErr
				}
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, codeToError(cancelCode(ctx))
		}
	}
}

// codeToError maps an outcome code to the canonical error value.
func codeToError(code trace.ErrorCode) error {
	switch code {
	case trace.OK:
		return nil
	case trace.Cancelled:
		return ErrCancelled
	case trace.DeadlineExceeded:
		return ErrDeadlineExceeded
	default:
		return &Status{Code: code, Message: code.String()}
	}
}
