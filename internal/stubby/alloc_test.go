package stubby

import (
	"bytes"
	"context"
	"testing"

	"rpcscale/internal/testutil"
)

// TestCallAllocBudget pins the steady-state allocation cost of a full
// loopback unary call — client marshal/seal/send, server decode/handle/
// respond, client receive/copy-out — so the pooled data plane cannot
// silently regress. The pre-pooling implementation spent 74 allocs per
// call; the budget below is under half that, with headroom over the
// current ~20 so incidental runtime changes don't flake.
func TestCallAllocBudget(t *testing.T) {
	if testutil.Instrumented {
		t.Skip("allocation counts differ under instrumented builds")
	}
	const budget = 35.0
	ch, _ := testSetup(t, Options{Workers: 2}, map[string]Handler{"svc/Echo": echoHandler})
	payload := bytes.Repeat([]byte{0x7f}, 512)
	ctx := context.Background()
	// Warm the connection, the buffer pools, and the runtime.
	for i := 0; i < 50; i++ {
		if _, err := ch.Call(ctx, "svc/Echo", payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		out, err := ch.Call(ctx, "svc/Echo", payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(payload) {
			t.Fatalf("echo length %d, want %d", len(out), len(payload))
		}
	})
	if allocs > budget {
		t.Errorf("loopback call: %.1f allocs/op, budget %.0f", allocs, budget)
	}
}
