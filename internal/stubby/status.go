// Package stubby implements a Stubby/gRPC-style RPC stack over TCP: a
// framed, encrypted, optionally compressed transport; a client channel
// with send/receive queues, deadlines, cancellation, and hedged requests;
// and a server with a receive queue and worker pool.
//
// The stack is instrumented to measure the paper's nine latency components
// (Fig. 9) on every call and emit them as trace spans, which is exactly
// the methodology the paper uses via Dapper. On a loopback connection the
// component clocks are shared, so wire components are honest; across
// machines they would require clock synchronization, which the paper's
// production tracing infrastructure provides and we do not attempt.
package stubby

import (
	"errors"
	"fmt"

	"rpcscale/internal/trace"
)

// Status is the canonical RPC outcome: a code from the paper's error
// taxonomy plus a human-readable message. A nil *Status or a Status with
// code OK means success.
type Status struct {
	Code    trace.ErrorCode
	Message string
}

// Error implements the error interface.
func (s *Status) Error() string {
	return fmt.Sprintf("rpc error: %s: %s", s.Code, s.Message)
}

// Errorf constructs a Status error.
func Errorf(code trace.ErrorCode, format string, args ...any) error {
	return &Status{Code: code, Message: fmt.Sprintf(format, args...)}
}

// StatusFromError extracts the Status from an error. Non-Status errors map
// to Internal; nil maps to OK.
func StatusFromError(err error) *Status {
	if err == nil {
		return &Status{Code: trace.OK}
	}
	var s *Status
	if errors.As(err, &s) {
		return s
	}
	return &Status{Code: trace.Internal, Message: err.Error()}
}

// Code returns the ErrorCode of err (OK for nil).
func Code(err error) trace.ErrorCode { return StatusFromError(err).Code }

// Convenience sentinels for common failures.
var (
	// ErrCancelled reports a call cancelled by the caller (including a
	// losing hedge leg).
	ErrCancelled = &Status{Code: trace.Cancelled, Message: "call cancelled"}
	// ErrDeadlineExceeded reports a call that outlived its deadline.
	ErrDeadlineExceeded = &Status{Code: trace.DeadlineExceeded, Message: "deadline exceeded"}
	// ErrUnavailable reports a closed or failed channel.
	ErrUnavailable = &Status{Code: trace.Unavailable, Message: "channel unavailable"}
	// ErrNotFound reports an unknown method or missing entity.
	ErrNotFound = &Status{Code: trace.EntityNotFound, Message: "not found"}
)
