package stubby

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

// TestLoadReportPiggyback drives a server whose handler blocks until
// released, so in-flight work accumulates, and checks the load report
// rides back on responses.
func TestLoadReportPiggyback(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	block := func(ctx context.Context, payload []byte) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return payload, nil
	}
	ch, srv := testSetup(t, Options{Workers: 8}, map[string]Handler{
		"svc/Block": block,
		"svc/Echo":  echoHandler,
	})

	if got := ch.ServerLoad(); got != 0 {
		t.Fatalf("ServerLoad before any call = %d", got)
	}

	// Park 4 calls in handlers.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = ch.Call(context.Background(), "svc/Block", []byte("x"))
		}()
	}
	for i := 0; i < 4; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers did not start")
		}
	}

	if got := ch.InFlight(); got < 4 {
		t.Errorf("InFlight = %d with 4 parked calls", got)
	}
	if got := srv.Load(); got < 4 {
		t.Errorf("server Load = %d with 4 parked handlers", got)
	}

	// A quick call while the others are parked must carry a load report
	// covering them.
	if _, err := ch.Call(context.Background(), "svc/Echo", []byte("probe")); err != nil {
		t.Fatal(err)
	}
	if got := ch.ServerLoad(); got < 4 {
		t.Errorf("ServerLoad after probe = %d, want >= 4", got)
	}

	close(release)
	wg.Wait()
}

// TestPoolLoadEndpoint checks the pool-level load arithmetic and that the
// pool satisfies the balancing Endpoint contract (compile-time via the
// loadbalance package is avoided here to keep stubby dependency-free; the
// cluster harness asserts it).
func TestPoolLoadEndpoint(t *testing.T) {
	srv := NewServer(Options{})
	srv.Register("svc/Echo", echoHandler)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	p, err := NewPool(l.Addr().String(), "test-cluster", 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Addr() != l.Addr().String() {
		t.Errorf("Addr = %q", p.Addr())
	}
	if got := p.Load(); got != 0 {
		t.Errorf("idle pool Load = %d", got)
	}
	if _, err := p.Call(context.Background(), "svc/Echo", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if got := p.InFlight(); got != 0 {
		t.Errorf("InFlight after completed call = %d", got)
	}
	// ServerLoad reflects whatever the server reported; with an idle
	// server it must be small but is allowed to be nonzero (the probe call
	// itself may have been counted while in a handler).
	if got := p.ServerLoad(); got > 2 {
		t.Errorf("idle ServerLoad = %d", got)
	}
}

// TestPoolPicker verifies Options.PoolPicker replaces round-robin
// selection.
func TestPoolPicker(t *testing.T) {
	srv := NewServer(Options{})
	srv.Register("svc/Echo", echoHandler)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	var picked []*Channel
	var pmu sync.Mutex
	opts := Options{PoolPicker: func(channels []*Channel) *Channel {
		pmu.Lock()
		picked = append(picked, channels[0])
		pmu.Unlock()
		return channels[0]
	}}
	p, err := NewPool(l.Addr().String(), "test-cluster", 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 6; i++ {
		if _, err := p.Call(context.Background(), "svc/Echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	pmu.Lock()
	defer pmu.Unlock()
	if len(picked) != 6 {
		t.Fatalf("picker called %d times, want 6", len(picked))
	}
	first := picked[0]
	for _, ch := range picked {
		if ch != first {
			t.Fatal("picker snapshot order changed across calls")
		}
	}
}
