package stubby

import (
	"bytes"
	"testing"
	"time"

	"rpcscale/internal/trace"
)

// TestEnvelopeFastPathParity pins the hand-rolled append encoders
// byte-identical to the codec-based reference encoders: the fast path is an
// optimization, not a protocol change.
func TestEnvelopeFastPathParity(t *testing.T) {
	requests := []request{
		{Method: "svc/Echo", TraceID: 1, SpanID: 2, Payload: []byte("hi")},
		{
			Method:     "billing.Ledger/Post",
			TraceID:    0xdeadbeefcafe,
			SpanID:     7,
			ParentSpan: 9,
			Deadline:   1500 * time.Millisecond,
			Payload:    bytes.Repeat([]byte{0x42}, 300),
			Compressed: true,
			Hedged:     true,
			CallSeq:    1234,
			Attempt:    3,
		},
		{Method: "", TraceID: 0, SpanID: 0, Payload: nil},
		{Method: "m", Payload: []byte{}, CallSeq: 1},
	}
	for i, r := range requests {
		want, err := r.marshalReference()
		if err != nil {
			t.Fatalf("request %d: reference: %v", i, err)
		}
		got := appendRequest(nil, &r)
		if !bytes.Equal(got, want) {
			t.Errorf("request %d: appendRequest differs from codec reference\n got %x\nwant %x", i, got, want)
		}
	}

	responses := []response{
		{Code: trace.OK, Payload: []byte("result")},
		{
			Code:       trace.Unavailable,
			Message:    "server overloaded",
			Compressed: true,
			Timings: serverTimings{
				RecvQueue: 100, App: 200, SendQueue: 300, RespProc: 400, Elapsed: 1000,
			},
		},
		{Code: trace.OK, Payload: bytes.Repeat([]byte{9}, 2048), More: true},
		{Code: trace.OK, Payload: []byte("loaded"), Load: 37},
		{},
	}
	for i, r := range responses {
		want, err := r.marshalReference()
		if err != nil {
			t.Fatalf("response %d: reference: %v", i, err)
		}
		got := appendResponse(nil, &r)
		if !bytes.Equal(got, want) {
			t.Errorf("response %d: appendResponse differs from codec reference\n got %x\nwant %x", i, got, want)
		}
	}
}

func TestEnvelopeFastPathRoundTrip(t *testing.T) {
	in := request{
		Method:     "search.Index/Lookup",
		TraceID:    99,
		SpanID:     3,
		ParentSpan: 2,
		Deadline:   time.Second,
		Payload:    []byte("query"),
		Hedged:     true,
		CallSeq:    55,
		Attempt:    2,
	}
	buf := appendRequest(nil, &in)
	var out request
	if err := parseRequestInto(&out, buf, nil); err != nil {
		t.Fatal(err)
	}
	if out.Method != in.Method || out.TraceID != in.TraceID || out.SpanID != in.SpanID ||
		out.ParentSpan != in.ParentSpan || out.Deadline != in.Deadline ||
		!bytes.Equal(out.Payload, in.Payload) || out.Hedged != in.Hedged ||
		out.CallSeq != in.CallSeq || out.Attempt != in.Attempt {
		t.Fatalf("request round trip mismatch: %+v != %+v", out, in)
	}

	resp := response{
		Code:    trace.DeadlineExceeded,
		Message: "too slow",
		Payload: []byte("partial"),
		More:    true,
		Timings: serverTimings{RecvQueue: 1, App: 2, SendQueue: 3, RespProc: 4, Elapsed: 10},
		Load:    12,
	}
	rbuf := appendResponse(nil, &resp)
	var rout response
	if err := parseResponseInto(&rout, rbuf); err != nil {
		t.Fatal(err)
	}
	if rout.Code != resp.Code || rout.Message != resp.Message ||
		!bytes.Equal(rout.Payload, resp.Payload) || rout.More != resp.More ||
		rout.Load != resp.Load || rout.Timings != resp.Timings {
		t.Fatalf("response round trip mismatch: %+v != %+v", rout, resp)
	}
}

func TestParseTruncatedEnvelope(t *testing.T) {
	r := request{Method: "svc/M", TraceID: 1, SpanID: 2, Payload: []byte("payload")}
	buf := appendRequest(nil, &r)
	for cut := 1; cut < len(buf); cut++ {
		var out request
		// Some prefixes happen to decode cleanly (trailing fields simply
		// absent); what must never happen is a panic or an out-of-bounds
		// payload slice.
		if err := parseRequestInto(&out, buf[:cut], nil); err == nil {
			if len(out.Payload) > cut {
				t.Fatalf("cut=%d: payload exceeds input", cut)
			}
		}
	}
}

// TestInternedMethodNames verifies the server resolves registered method
// names through the interning table, so decode reuses the registered
// string.
func TestInternedMethodNames(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	const m = "svc.Interned/Call"
	s.Register(m, echoHandler)
	s.mu.RLock()
	got := s.intern([]byte(m))
	s.mu.RUnlock()
	if got != m {
		t.Fatalf("intern(%q) = %q", m, got)
	}
	if s.methodNames[m] != m {
		t.Fatal("registered method missing from interning table")
	}
	if unknown := s.intern([]byte("not/registered")); unknown != "not/registered" {
		t.Fatalf("intern of unknown method = %q", unknown)
	}
}
