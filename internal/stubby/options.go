package stubby

import (
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/secure"
	"rpcscale/internal/trace"
)

// SpanObserver receives every span the stack produces. It must be safe
// for concurrent use; the caller may be any client goroutine.
// *telemetry.Plane is the canonical implementation.
type SpanObserver interface {
	Observe(*trace.Span)
}

// Options configures a Channel or Server. The zero value is usable; New*
// functions fill in defaults.
type Options struct {
	// Secret is the pre-shared transport secret. Both ends of a
	// connection must agree. Defaults to a process-wide development
	// secret; production would use a real handshake.
	Secret []byte

	// Compression selects payload compression. Payloads below
	// CompressThreshold bytes are sent uncompressed regardless, since
	// small RPCs (the fleet's majority) lose more cycles than bytes.
	Compression       compressor.Algorithm
	CompressThreshold int
	CompressorStats   *compressor.Stats
	EncryptionStats   *secure.Stats

	// Collector receives a trace.Span for every completed call (client
	// side) and every served request (server side). Nil disables tracing.
	Collector *trace.Collector

	// Telemetry is the observability plane's hook: it receives every
	// span the stack produces, after the Collector. This is the single
	// option through which internal/telemetry plugs Monarch export, GWP
	// cycle attribution, and Dapper span retention into the stack; the
	// stack itself stays ignorant of those systems. Nil disables it.
	Telemetry SpanObserver

	// ClusterName labels spans with the placement of this endpoint.
	ClusterName string

	// SendQueueLen and RecvQueueLen bound the client send queue and the
	// server receive queue. Queue depth is where the paper's queuing
	// latency lives; undersized queues convert queuing into NoResource
	// errors, as in production overload.
	SendQueueLen int
	RecvQueueLen int

	// Workers is the server handler pool size.
	Workers int

	// DefaultDeadline applies to calls whose context has none.
	DefaultDeadline time.Duration
}

var defaultSecret = []byte("rpcscale-development-psk")

func (o *Options) withDefaults() Options {
	out := *o
	if out.Secret == nil {
		out.Secret = defaultSecret
	}
	if out.CompressThreshold == 0 {
		out.CompressThreshold = 512
	}
	if out.SendQueueLen == 0 {
		out.SendQueueLen = 1024
	}
	if out.RecvQueueLen == 0 {
		out.RecvQueueLen = 1024
	}
	if out.Workers == 0 {
		out.Workers = 8
	}
	if out.DefaultDeadline == 0 {
		out.DefaultDeadline = 30 * time.Second
	}
	return out
}
