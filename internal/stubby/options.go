package stubby

import (
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/faultplane"
	"rpcscale/internal/secure"
	"rpcscale/internal/trace"
)

// SpanObserver receives every span the stack produces. It must be safe
// for concurrent use; the caller may be any client goroutine.
// *telemetry.Plane is the canonical implementation.
type SpanObserver interface {
	Observe(*trace.Span)
}

// RobustnessObserver receives the robustness layer's events: retries the
// budget admitted or refused, circuit-breaker state transitions, and
// calls the server shed under load. It must be safe for concurrent use;
// *telemetry.Plane is the canonical implementation (the counters behind
// rpcbench's chaos report).
type RobustnessObserver interface {
	RetryAttempt(method string)
	RetrySuppressed(method string)
	BreakerTransition(method string, from, to BreakerState)
	CallShed(method string)
}

// NopRobustnessObserver ignores every robustness event. Set it on
// Options.Robustness to keep telemetry.Plane.Apply from installing the
// plane there.
type NopRobustnessObserver struct{}

func (NopRobustnessObserver) RetryAttempt(string)                                  {}
func (NopRobustnessObserver) RetrySuppressed(string)                               {}
func (NopRobustnessObserver) BreakerTransition(string, BreakerState, BreakerState) {}
func (NopRobustnessObserver) CallShed(string)                                      {}

// DataPlaneObserver receives the multi-core data plane's events: codec
// pool activity and adaptive-compression decisions. It must be safe for
// concurrent use; *telemetry.Plane is the canonical implementation.
type DataPlaneObserver interface {
	// CodecJobEnqueued reports one frame handed to the codec workers and
	// the number of jobs already queued ahead of it.
	CodecJobEnqueued(queued int)
	// CompressSkipped reports a payload the adaptive estimator sent
	// uncompressed: bytes is the payload size the compression tax was
	// spared on.
	CompressSkipped(method string, bytes int)
}

// Options configures a Channel or Server. The zero value is usable; New*
// functions fill in defaults.
type Options struct {
	// Secret is the pre-shared transport secret. Both ends of a
	// connection must agree. Defaults to a process-wide development
	// secret; production would use a real handshake.
	Secret []byte

	// Compression selects payload compression. Payloads below
	// CompressThreshold bytes are sent uncompressed regardless, since
	// small RPCs (the fleet's majority) lose more cycles than bytes.
	Compression       compressor.Algorithm
	CompressThreshold int
	CompressorStats   *compressor.Stats
	EncryptionStats   *secure.Stats

	// Collector receives a trace.Span for every completed call (client
	// side) and every served request (server side). Nil disables tracing.
	Collector *trace.Collector

	// Telemetry is the observability plane's hook: it receives every
	// span the stack produces, after the Collector. This is the single
	// option through which internal/telemetry plugs Monarch export, GWP
	// cycle attribution, and Dapper span retention into the stack; the
	// stack itself stays ignorant of those systems. Nil disables it.
	Telemetry SpanObserver

	// ClusterName labels spans with the placement of this endpoint.
	ClusterName string

	// SendQueueLen and RecvQueueLen bound the client send queue and the
	// server receive queue. Queue depth is where the paper's queuing
	// latency lives; undersized queues convert queuing into NoResource
	// errors, as in production overload.
	SendQueueLen int
	RecvQueueLen int

	// Workers is the server handler pool size.
	Workers int

	// DefaultDeadline applies to calls whose context has none.
	DefaultDeadline time.Duration

	// Faults attaches a deterministic fault injector to this endpoint:
	// channels consult it with ScopeClient before each attempt, servers
	// with ScopeServer before each handled request. Nil disables
	// injection (the default; production paths never pay for it).
	Faults *faultplane.Injector

	// Retry, when non-nil, makes the channel retry transient failures
	// itself per the policy — the managed-service placement of retry
	// logic, instead of every caller hand-rolling it. Give the policy a
	// Budget to cap retry amplification under overload.
	Retry *RetryPolicy

	// Breaker, when non-nil, gives the channel a circuit breaker with
	// this configuration, tracking state per (channel, method). The
	// breaker sits outside the retry layer: an open circuit fails fast
	// without spending any attempts.
	Breaker *BreakerConfig

	// ShedThreshold enables server-side load shedding: when the receive
	// queue holds at least this many requests, new arrivals are rejected
	// immediately with Unavailable instead of queuing toward a deadline
	// they would miss anyway. 0 disables (the default); the hard
	// queue-full NoResource rejection applies regardless.
	ShedThreshold int

	// Robustness observes retry, breaker, and shedding events. Nil
	// disables (telemetry.Plane.Apply installs itself here).
	Robustness RobustnessObserver

	// StreamWindow is the initial per-direction credit window of every
	// stream opened on this endpoint, in bytes: the peer may have at most
	// this many unconsumed payload bytes in flight per stream, and a
	// single stream message may not exceed it. 0 selects the 256 KiB
	// default; WithStreamWindow overrides per stream.
	StreamWindow int

	// BulkThreshold routes unary payloads of at least this many bytes
	// through the zero-copy bulk lane (chunked, scatter-gather writes,
	// no compression) instead of the inline envelope. 0 selects the
	// 16 KiB default; negative disables the bulk lane. WithBulkThreshold
	// and WithBulkLane override per call on the client side.
	BulkThreshold int

	// ConnStripes makes Dial open this many TCP connections and stripe
	// streams and bulk transfers across them, so one client:server pair
	// is no longer serialized on a single socket's send/recv loops.
	// Unary envelope traffic and each individual call or stream keep
	// per-connection affinity, preserving frame order. 0 and 1 mean one
	// connection (the default). NewChannel ignores it: a channel built
	// over an existing conn cannot dial more.
	ConnStripes int

	// CodecWorkers sizes the per-connection codec worker pool that seals
	// and opens large frames off the send/recv loops. 0 (the default)
	// sizes it from GOMAXPROCS and disables it on a single-proc runtime;
	// > 0 forces that many workers; < 0 forces the inline path.
	CodecWorkers int

	// AdaptiveCompression lets the endpoint skip configured compression
	// per method when live telemetry (an entropy probe on the first
	// bytes plus a windowed observed-ratio estimator) says the payloads
	// do not compress — the paper's compression tax is pure waste there.
	AdaptiveCompression bool

	// DataPlane observes codec-pool and adaptive-compression events. Nil
	// disables (telemetry.Plane.Apply installs itself here).
	DataPlane DataPlaneObserver

	// PoolPicker, when non-nil, replaces a Pool's round-robin channel
	// selection: it is called with the live members (never empty, not
	// retained) and returns the channel for one call. It must be safe for
	// concurrent use. Channel.InFlight and Channel.ServerLoad are the load
	// signals a picker typically consults.
	PoolPicker func(channels []*Channel) *Channel
}

var defaultSecret = []byte("rpcscale-development-psk")

func (o *Options) withDefaults() Options {
	out := *o
	if out.Secret == nil {
		out.Secret = defaultSecret
	}
	if out.CompressThreshold == 0 {
		out.CompressThreshold = 512
	}
	if out.SendQueueLen == 0 {
		out.SendQueueLen = 1024
	}
	if out.RecvQueueLen == 0 {
		out.RecvQueueLen = 1024
	}
	if out.Workers == 0 {
		out.Workers = 8
	}
	if out.DefaultDeadline == 0 {
		out.DefaultDeadline = 30 * time.Second
	}
	if out.StreamWindow == 0 {
		out.StreamWindow = defaultStreamWindow
	}
	if out.BulkThreshold == 0 {
		out.BulkThreshold = defaultBulkThreshold
	}
	return out
}

// defaultStreamWindow is the default per-direction stream credit window:
// large enough that a steady stream of the fleet's P99-sized messages
// keeps the pipe full, small enough to bound per-stream receiver memory.
const defaultStreamWindow = 256 << 10

// defaultBulkThreshold is the payload size at which unary calls switch to
// the bulk lane. 16 KiB sits just above the fleet's P99 request (Fig. 6):
// the envelope path keeps the common case, the bulk lane takes the tail.
const defaultBulkThreshold = 16 << 10
