package stubby

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpcscale/internal/faultplane"
	"rpcscale/internal/trace"
)

// recordingObserver tallies robustness events for assertions.
type recordingObserver struct {
	mu          sync.Mutex
	retries     int
	suppressed  int
	shed        int
	transitions []string
}

func (o *recordingObserver) RetryAttempt(string)    { o.mu.Lock(); o.retries++; o.mu.Unlock() }
func (o *recordingObserver) RetrySuppressed(string) { o.mu.Lock(); o.suppressed++; o.mu.Unlock() }
func (o *recordingObserver) CallShed(string)        { o.mu.Lock(); o.shed++; o.mu.Unlock() }
func (o *recordingObserver) BreakerTransition(method string, from, to BreakerState) {
	o.mu.Lock()
	o.transitions = append(o.transitions, from.String()+">"+to.String())
	o.mu.Unlock()
}

// --- retry budget ---

// A failing backend must exhaust the budget: after the burst allowance
// drains below half, every further retry is suppressed.
func TestRetryBudgetExhaustion(t *testing.T) {
	var attempts atomic.Uint64
	ch, _ := testSetup(t, Options{}, map[string]Handler{
		"svc/Fail": func(ctx context.Context, p []byte) ([]byte, error) {
			attempts.Add(1)
			return nil, ErrUnavailable
		},
	})

	budget := NewRetryBudget(4, 0.1) // retries allowed while tokens > 2
	obs := &recordingObserver{}
	policy := RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, Budget: budget}
	invoke := ch.Intercepted(WithRetryObserved(policy, obs))

	for i := 0; i < 20; i++ {
		if _, err := invoke(context.Background(), "svc/Fail", nil); err == nil {
			t.Fatal("expected failure")
		}
	}
	// Every failure costs one token: the 4-token budget admits at most 2
	// retries (4 -> 3 -> 2, then tokens ≤ max/2) and suppresses the rest.
	if budget.Attempted() > 2 {
		t.Fatalf("budget admitted %d retries, want <= 2", budget.Attempted())
	}
	if budget.Suppressed() == 0 {
		t.Fatal("budget suppressed no retries under sustained failure")
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.retries != int(budget.Attempted()) || obs.suppressed != int(budget.Suppressed()) {
		t.Fatalf("observer (retries=%d suppressed=%d) disagrees with budget (%d, %d)",
			obs.retries, obs.suppressed, budget.Attempted(), budget.Suppressed())
	}
	if got := attempts.Load(); got != 20+budget.Attempted() {
		t.Fatalf("backend saw %d attempts, want %d", got, 20+budget.Attempted())
	}
}

// Successes refund fractional tokens, re-admitting retries slowly — the
// sustained amplification cap.
func TestRetryBudgetRefund(t *testing.T) {
	b := NewRetryBudget(4, 0.5)
	for i := 0; i < 10; i++ {
		b.OnOutcome(true) // drain well past half
	}
	if b.AllowRetry() {
		t.Fatal("drained budget should refuse retries")
	}
	for i := 0; i < 5; i++ {
		b.OnOutcome(false) // 5 successes * 0.5 = 2.5 tokens > max/2
	}
	if !b.AllowRetry() {
		t.Fatal("refunded budget should admit a retry")
	}
	if b.Cap() != 1.5 {
		t.Fatalf("Cap() = %v, want 1.5", b.Cap())
	}
}

// --- backoff ---

// Backoff doubles per attempt and saturates at the cap.
func TestBackoffCap(t *testing.T) {
	cur := 2 * time.Millisecond
	var seen []time.Duration
	for i := 0; i < 6; i++ {
		seen = append(seen, cur)
		cur = nextBackoff(cur, 16*time.Millisecond)
	}
	want := []time.Duration{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if seen[i] != w*time.Millisecond {
			t.Fatalf("backoff[%d] = %v, want %v", i, seen[i], w*time.Millisecond)
		}
	}
	// No cap: keeps doubling.
	if got := nextBackoff(time.Second, 0); got != 2*time.Second {
		t.Fatalf("uncapped backoff = %v, want 2s", got)
	}
}

// --- circuit breaker ---

// The full open -> half-open -> closed cycle, on a virtual clock.
func TestBreakerCycle(t *testing.T) {
	now := time.Unix(0, 0)
	obs := &recordingObserver{}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		HalfOpenProbes:   2,
		now:              func() time.Time { return now },
	}, obs)
	const m = "svc/M"

	// Closed: failures below threshold keep it closed; a success resets.
	for i := 0; i < 2; i++ {
		b.Record(m, ErrUnavailable)
	}
	b.Record(m, nil)
	if b.State(m) != BreakerClosed {
		t.Fatalf("state after reset = %v", b.State(m))
	}

	// Threshold consecutive failures open the circuit.
	for i := 0; i < 3; i++ {
		if !b.Allow(m) {
			t.Fatal("closed breaker refused a call")
		}
		b.Record(m, ErrUnavailable)
	}
	if b.State(m) != BreakerOpen {
		t.Fatalf("state after %d failures = %v", 3, b.State(m))
	}
	if b.Allow(m) {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// Cooldown elapses: one half-open probe at a time.
	now = now.Add(time.Second)
	if !b.Allow(m) {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State(m) != BreakerHalfOpen {
		t.Fatalf("state during probe = %v", b.State(m))
	}
	if b.Allow(m) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: back to open, cooldown restarts.
	b.Record(m, ErrUnavailable)
	if b.State(m) != BreakerOpen {
		t.Fatalf("state after failed probe = %v", b.State(m))
	}
	if b.Allow(m) {
		t.Fatal("re-opened breaker admitted a call")
	}

	// Second cooldown: two successful probes close it.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow(m) {
			t.Fatalf("probe %d refused", i)
		}
		b.Record(m, nil)
	}
	if b.State(m) != BreakerClosed {
		t.Fatalf("state after successful probes = %v", b.State(m))
	}

	obs.mu.Lock()
	defer obs.mu.Unlock()
	want := []string{
		"closed>open", "open>half-open", "half-open>open",
		"open>half-open", "half-open>closed",
	}
	if len(obs.transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", obs.transitions, want)
	}
	for i := range want {
		if obs.transitions[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q", i, obs.transitions[i], want[i])
		}
	}
}

// Permanent errors (not in TripCodes) must not trip the breaker.
func TestBreakerIgnoresPermanentErrors(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2}, nil)
	for i := 0; i < 10; i++ {
		b.Record("m", &Status{Code: trace.InvalidArgument, Message: "bad"})
	}
	if b.State("m") != BreakerClosed {
		t.Fatalf("breaker tripped on permanent errors: %v", b.State("m"))
	}
}

// A channel with Options.Breaker fails fast once the backend trips it.
func TestChannelIntegratedBreaker(t *testing.T) {
	var handled atomic.Uint64
	opts := Options{
		Breaker: &BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour},
	}
	ch, _ := testSetup(t, opts, map[string]Handler{
		"svc/Fail": func(ctx context.Context, p []byte) ([]byte, error) {
			handled.Add(1)
			return nil, ErrUnavailable
		},
	})
	for i := 0; i < 10; i++ {
		if _, err := ch.Call(context.Background(), "svc/Fail", nil); err == nil {
			t.Fatal("expected failure")
		}
	}
	if ch.Breaker().State("svc/Fail") != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", ch.Breaker().State("svc/Fail"))
	}
	if got := handled.Load(); got != 3 {
		t.Fatalf("backend saw %d calls after trip, want 3", got)
	}
}

// --- load shedding ---

// With a shed threshold and a stalled worker pool, excess arrivals are
// rejected Unavailable and counted by the observer.
func TestLoadShedding(t *testing.T) {
	obs := &recordingObserver{}
	release := make(chan struct{})
	opts := Options{
		Workers:       1,
		RecvQueueLen:  64,
		ShedThreshold: 2,
		Robustness:    obs,
	}
	ch, _ := testSetup(t, opts, map[string]Handler{
		"svc/Slow": func(ctx context.Context, p []byte) ([]byte, error) {
			<-release
			return p, nil
		},
	})
	defer close(release)

	var wg sync.WaitGroup
	var shedErrs, otherErrs atomic.Uint64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, err := ch.Call(ctx, "svc/Slow", []byte("x"))
			if err == nil {
				return
			}
			if Code(err) == trace.Unavailable {
				shedErrs.Add(1)
			} else {
				otherErrs.Add(1)
			}
		}()
	}
	// Let the queue fill, then release the pool so the accepted calls
	// complete within their deadlines.
	time.Sleep(300 * time.Millisecond)
	for i := 0; i < 16; i++ {
		select {
		case release <- struct{}{}:
		default:
		}
	}
	wg.Wait()

	if shedErrs.Load() == 0 {
		t.Fatal("no calls were shed despite a stalled single worker")
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.shed == 0 {
		t.Fatal("observer saw no shed calls")
	}
	if uint64(obs.shed) != shedErrs.Load() {
		t.Fatalf("observer shed=%d, clients saw %d Unavailable", obs.shed, shedErrs.Load())
	}
}

// --- fault plane integration ---

// findSeed scans for a seed whose decision stream satisfies want, so
// fault-plane integration tests are deterministic without hand-tuned
// magic numbers.
func findSeed(t *testing.T, want func(seed uint64) bool) uint64 {
	t.Helper()
	for s := uint64(0); s < 10000; s++ {
		if want(s) {
			return s
		}
	}
	t.Fatal("no seed under 10000 satisfies the predicate")
	return 0
}

// An injected drop on the primary leg forces the hedge to win; the
// losing primary is cancelled and its span records the cancellation —
// the hedging economics of the paper's §4.4 under injected failure.
func TestHedgeCancellationUnderInjectedDrop(t *testing.T) {
	const method = "svc/Slow"
	// Drop the primary attempt (attempt key 0) but not the hedge leg
	// (hedge bit set): the two draw from independent decision streams,
	// so scan for a seed separating them.
	mkInjector := func(seed uint64) *faultplane.Injector {
		return faultplane.New(faultplane.Config{
			Seed:  seed,
			Rules: []faultplane.Rule{{Methods: method, DropRate: 0.5}},
		})
	}
	// testSetup shares Options (and so the injector) between channel and
	// server, so the hedge must draw clean decisions at BOTH scopes.
	hedgeKey := faultplane.Key{Seq: 0, Have: true, Attempt: hedgeAttemptBit}
	seed := findSeed(t, func(s uint64) bool {
		inj := mkInjector(s)
		prim := inj.Decide(faultplane.ScopeClient, method, faultplane.Key{Seq: 0, Have: true, Attempt: 0})
		hedgeCl := inj.Decide(faultplane.ScopeClient, method, hedgeKey)
		hedgeSrv := inj.Decide(faultplane.ScopeServer, method, hedgeKey)
		return prim.Drop && !hedgeCl.Faulty() && !hedgeSrv.Faulty()
	})

	col := trace.New()
	opts := Options{Collector: col, Faults: mkInjector(seed)}
	ch, _ := testSetup(t, opts, map[string]Handler{method: echoHandler})

	ctx, cancel := context.WithTimeout(ContextWithCallID(context.Background(), 0), 5*time.Second)
	defer cancel()
	start := time.Now()
	out, err := ch.CallHedged(ctx, method, []byte("payload"), 100*time.Millisecond)
	if err != nil {
		t.Fatalf("hedged call failed: %v", err)
	}
	if string(out) != "payload" {
		t.Fatalf("hedged call returned %q", out)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("hedge did not rescue the dropped primary promptly")
	}

	// The winner is the hedged leg; the abandoned primary's span lands
	// once its context is cancelled by CallHedged's cleanup.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var hedgeOK, primaryCancelled bool
		for _, s := range col.Spans() {
			if s.Method != method {
				continue
			}
			if s.Hedged && s.Err == trace.OK {
				hedgeOK = true
			}
			if !s.Hedged && s.Err == trace.Cancelled {
				primaryCancelled = true
			}
		}
		if hedgeOK && primaryCancelled {
			return
		}
		if time.Now().After(deadline) {
			var got []string
			for _, s := range col.Spans() {
				got = append(got, s.Method+"/"+s.Err.String())
			}
			t.Fatalf("spans never showed hedge-won + primary-cancelled: %v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Client-scope rejects surface as the injected code without touching
// the network.
func TestClientScopeReject(t *testing.T) {
	inj := faultplane.New(faultplane.Config{
		Seed:  3,
		Rules: []faultplane.Rule{{RejectRate: 1, RejectCode: trace.NoResource}},
	})
	var handled atomic.Uint64
	opts := Options{Faults: inj}
	ch, _ := testSetup(t, opts, map[string]Handler{
		"svc/M": func(ctx context.Context, p []byte) ([]byte, error) {
			handled.Add(1)
			return p, nil
		},
	})
	_, err := ch.Call(context.Background(), "svc/M", []byte("x"))
	if Code(err) != trace.NoResource {
		t.Fatalf("err = %v, want NoResource", err)
	}
	if handled.Load() != 0 {
		t.Fatal("rejected call reached the server")
	}
}

// Server-scope rejects ride back as responses with the injected code,
// and are retried by the retry layer when retryable. Only the server
// carries the injector: the retry must succeed because attempt 0 is
// rejected while attempt 1 draws a clean decision.
func TestServerScopeRejectRetried(t *testing.T) {
	const method = "svc/M"
	mkInjector := func(seed uint64) *faultplane.Injector {
		return faultplane.New(faultplane.Config{
			Seed:  seed,
			Rules: []faultplane.Rule{{Methods: method, RejectRate: 0.5}},
		})
	}
	seed := findSeed(t, func(s uint64) bool {
		inj := mkInjector(s)
		d0 := inj.Decide(faultplane.ScopeServer, method, faultplane.Key{Seq: 0, Have: true, Attempt: 0})
		d1 := inj.Decide(faultplane.ScopeServer, method, faultplane.Key{Seq: 0, Have: true, Attempt: 1})
		return d0.Reject != trace.OK && d1.Reject == trace.OK
	})

	srv := NewServer(Options{Faults: mkInjector(seed)})
	srv.Register(method, echoHandler)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	retry := DefaultRetryPolicy()
	ch, err := Dial(l.Addr().String(), "test-cluster", Options{Retry: &retry})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	ctx := ContextWithCallID(context.Background(), 0)
	out, err := ch.Call(ctx, method, []byte("retried"))
	if err != nil {
		t.Fatalf("call failed despite retry: %v", err)
	}
	if string(out) != "retried" {
		t.Fatalf("out = %q", out)
	}
}
