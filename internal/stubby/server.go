package stubby

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/faultplane"
	"rpcscale/internal/secure"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Handler serves one RPC method: it receives the request payload and
// returns the response payload or an error (ideally a *Status).
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// ServerInterceptor wraps handler invocation; interceptors compose
// outermost-first, mirroring Stubby/gRPC middleware.
type ServerInterceptor func(ctx context.Context, method string, payload []byte, next Handler) ([]byte, error)

// Server accepts connections and dispatches RPCs to registered handlers
// through a bounded receive queue and a fixed worker pool — the structure
// whose queue the paper's ServerRecvQueue component measures.
type Server struct {
	opts Options
	comp *compressor.Compressor

	mu           sync.RWMutex
	handlers     map[string]Handler
	bidiHandlers map[string]BidiHandler
	methodNames  map[string]string // interned registered names, keyed by themselves
	intcpt       []ServerInterceptor

	// intern is internMethod bound once at construction so the per-request
	// decode path does not allocate a method-value closure.
	intern func([]byte) string

	recvQ chan *serverCall

	// inflight counts calls a worker is currently executing; together with
	// the receive-queue depth it is the load estimate piggybacked on every
	// response (DESIGN.md §13) for client-side load-aware balancing.
	inflight atomic.Int64

	lnMu      sync.Mutex
	listeners map[net.Listener]struct{}

	conns sync.WaitGroup // active connection readers + writers
	pool  sync.WaitGroup // worker pool

	closeOnce sync.Once
	closed    chan struct{}
}

// serverCall is one queued request with the instrumentation timestamps
// accumulated so far. raw is a pooled recv buffer: ownership travels with
// the call, and the buffer is released only after the response envelope is
// sealed (the handler's payload — and possibly its response — alias it).
// A stream open carries the eagerly registered stream; a bulk-lane
// request carries its reassembled payload in bulkData (also pooled).
type serverCall struct {
	conn     *serverConn
	streamID uint64
	req      request   // decoded on a worker; Payload aliases raw
	raw      []byte    // pooled decrypted envelope bytes
	stream   *Stream   // non-nil: this is a stream open, not a unary call
	bulkData []byte    // pooled bulk-lane request payload
	readDone time.Time // when the request frame finished arriving
}

// serverConn is the per-connection state: the transport plus the response
// send queue drained by a writer goroutine (ServerSendQueue).
type serverConn struct {
	tr     *transport
	sendQ  chan *serverResponse
	closed chan struct{}
	once   sync.Once

	// gate is the adaptive-compression decision state, owned by this
	// connection's writeLoop goroutine; nil when adaptive compression is
	// off.
	gate *compressGate

	cancelMu sync.Mutex
	cancels  map[uint64]context.CancelFunc // in-flight calls by stream ID

	streamMu sync.Mutex
	streams  map[uint64]*Stream // live bidirectional streams
}

func (c *serverConn) shutdown() {
	c.once.Do(func() {
		close(c.closed)
		c.tr.close()
	})
}

func (c *serverConn) storeCancel(id uint64, cancel context.CancelFunc) {
	c.cancelMu.Lock()
	c.cancels[id] = cancel
	c.cancelMu.Unlock()
}

func (c *serverConn) deleteCancel(id uint64) {
	c.cancelMu.Lock()
	delete(c.cancels, id)
	c.cancelMu.Unlock()
}

func (c *serverConn) cancelStream(id uint64) {
	c.cancelMu.Lock()
	cancel := c.cancels[id]
	c.cancelMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (c *serverConn) addStream(id uint64, st *Stream) {
	c.streamMu.Lock()
	if c.streams == nil {
		c.streams = make(map[uint64]*Stream)
	}
	c.streams[id] = st
	c.streamMu.Unlock()
}

func (c *serverConn) lookupStream(id uint64) *Stream {
	c.streamMu.Lock()
	st := c.streams[id]
	c.streamMu.Unlock()
	return st
}

func (c *serverConn) dropStream(id uint64) {
	c.streamMu.Lock()
	delete(c.streams, id)
	c.streamMu.Unlock()
}

// failStreams terminates every live stream on the connection, used when
// its read loop exits.
func (c *serverConn) failStreams() {
	c.streamMu.Lock()
	streams := c.streams
	c.streams = nil
	c.streamMu.Unlock()
	for _, st := range streams {
		st.terminate(ErrUnavailable, false)
	}
}

// serverResponse is a response waiting in the send queue.
type serverResponse struct {
	streamID uint64
	// method is the interned method name, for the adaptive-compression
	// gate's per-method estimator.
	method string
	resp   response
	reqBuf []byte // pooled request envelope, released after the response seals
	// reqBulk is the pooled bulk-lane request payload; like reqBuf it is
	// released only after the response seals (the handler's response may
	// alias it — echo servers return their input).
	reqBulk []byte
	// bulk routes the response payload through the bulk lane: bulkOut
	// leaves as chunk frames after a FrameBulkResponse envelope.
	bulk      bool
	bulkOut   []byte
	appDone   time.Time // handler completion: send-queue time starts here
	readDone  time.Time // request arrival, for Elapsed
	recvQueue time.Duration
	app       time.Duration
}

// NewServer returns a server with the given options.
func NewServer(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:         o,
		comp:         compressor.New(o.Compression, o.CompressorStats),
		handlers:     make(map[string]Handler),
		bidiHandlers: make(map[string]BidiHandler),
		methodNames:  make(map[string]string),
		recvQ:        make(chan *serverCall, o.RecvQueueLen),
		listeners:    make(map[net.Listener]struct{}),
		closed:       make(chan struct{}),
	}
	s.intern = s.internMethod
	for i := 0; i < o.Workers; i++ {
		s.pool.Add(1)
		go s.worker()
	}
	return s
}

// Register installs a handler for a fully qualified method name. It panics
// on duplicate registration, which is a programming error.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("stubby: duplicate handler for %q", method))
	}
	if _, dup := s.bidiHandlers[method]; dup {
		panic(fmt.Sprintf("stubby: %q already registered as a stream", method))
	}
	s.handlers[method] = h
	s.methodNames[method] = method
}

// internMethod resolves a decoded method name against the registration
// table so steady-state request decode reuses the registered string
// instead of allocating one per call. Unknown methods (which fail lookup
// anyway) pay the allocation. Caller must hold s.mu.
func (s *Server) internMethod(b []byte) string {
	if m, ok := s.methodNames[string(b)]; ok {
		return m
	}
	return string(b)
}

// Intercept appends a server interceptor; later additions run closer to
// the handler.
func (s *Server) Intercept(i ServerInterceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intcpt = append(s.intcpt, i)
}

// Serve accepts connections on l until the server or listener closes.
// It always returns a non-nil error; after Close it returns nil-wrapped
// ErrServerClosed semantics via net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.lnMu.Lock()
	select {
	case <-s.closed:
		s.lnMu.Unlock()
		l.Close()
		return net.ErrClosed
	default:
	}
	s.listeners[l] = struct{}{}
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		tr, err := newTransport(conn, s.opts.Secret, "s2c", "c2s", s.opts.EncryptionStats)
		if err != nil {
			conn.Close()
			continue
		}
		tr.startCodec(codecWorkerCount(s.opts.CodecWorkers), s.opts.DataPlane)
		sc := &serverConn{
			tr:      tr,
			sendQ:   make(chan *serverResponse, s.opts.SendQueueLen),
			cancels: make(map[uint64]context.CancelFunc),
			closed:  make(chan struct{}),
			gate: newCompressGate(
				s.opts.AdaptiveCompression && s.opts.Compression != compressor.None,
				s.opts.DataPlane, s.comp.Stats()),
		}
		s.conns.Add(2)
		go s.readLoop(sc)
		go s.writeLoop(sc)
	}
}

// serverBulk assembles one bulk-lane request: the envelope arrives as a
// FrameBulkRequest, the payload as chunk frames on the same stream ID.
type serverBulk struct {
	//rpclint:owns pooled request envelope; released by assembleBulk on
	// hand-off or by readLoop teardown.
	env []byte
	//rpclint:owns pooled payload assembly; ownership moves to
	// serverCall.bulkData when the last chunk lands.
	data      []byte
	readStart time.Time
}

// readLoop pulls frames off one connection and enqueues requests. It owns
// bulkIn, the bulk-lane request assemblies, so chunk reassembly takes no
// locks; live streams get their chunks delivered directly (deliverChunk
// never blocks — credit windows bound the queued bytes — so one stalled
// stream cannot head-of-line-block the connection).
func (s *Server) readLoop(sc *serverConn) {
	defer s.conns.Done()
	defer sc.tr.stopCodec()
	defer sc.shutdown()
	defer sc.failStreams()
	bulkIn := make(map[uint64]*serverBulk)
	defer func() {
		for _, b := range bulkIn {
			wire.PutBuf(b.env)
			wire.PutBuf(b.data)
		}
	}()
	if sc.tr.codec != nil {
		s.readLoopPipelined(sc, bulkIn)
		return
	}
	for {
		m, err := sc.tr.recv()
		if err != nil {
			// EOF, a closed socket, or a connection-level failure;
			// nothing to salvage either way.
			return
		}
		if !s.dispatchServerFrame(sc, m, bulkIn) {
			return
		}
	}
}

// readLoopPipelined is readLoop's frame dispatcher when the connection has
// a codec pool: a pump goroutine reads ahead and submits large frames for
// concurrent decryption while this goroutine harvests completed opens in
// arrival order and dispatches them. After a failure it keeps draining the
// pump's channel (harvesting and releasing buffers) so the pump never
// blocks on a full channel.
func (s *Server) readLoopPipelined(sc *serverConn, bulkIn map[uint64]*serverBulk) {
	items := make(chan recvItem, recvPipelineDepth)
	s.conns.Add(1)
	go func() {
		defer s.conns.Done()
		_ = sc.tr.recvPump(items)
		close(items)
	}()
	failed := false
	for it := range items {
		if it.job != nil {
			out, err := sc.tr.finishOpen(it.job)
			if err != nil {
				if !failed {
					sc.shutdown()
					failed = true
				}
				continue
			}
			it.msg.plain = out
		}
		if failed {
			wire.PutBuf(it.msg.plain)
			continue
		}
		if !s.dispatchServerFrame(sc, it.msg, bulkIn) {
			sc.shutdown()
			failed = true
		}
	}
}

// dispatchServerFrame routes one decoded frame; false means the read loop
// should exit (shutdown or GoAway).
func (s *Server) dispatchServerFrame(sc *serverConn, m recvMsg, bulkIn map[uint64]*serverBulk) bool {
	plain := m.plain
	switch m.typ {
	case wire.FrameRequest:
		if t := s.opts.ShedThreshold; t > 0 && len(s.recvQ) >= t {
			// Load shedding: past the configured queue depth, new
			// arrivals would only queue toward deadlines they will
			// miss, so reject them immediately with Unavailable —
			// the fail-fast overload posture the paper's §7 retry
			// analysis assumes servers adopt.
			s.shed(sc, m.streamID, plain)
			wire.PutBuf(plain)
			return true
		}
		call := &serverCall{
			conn:     sc,
			streamID: m.streamID,
			raw:      plain, // pooled; ownership travels with the call
			readDone: time.Now(),
		}
		return s.enqueue(call)
	case wire.FrameBulkRequest:
		// Envelope of a bulk-lane request; the payload follows as
		// chunks. Queue admission happens when the payload completes.
		bulkIn[m.streamID] = &serverBulk{env: plain, readStart: time.Now()}
	case wire.FrameStreamOpen:
		return s.acceptStream(sc, m.streamID, plain)
	case wire.FrameStreamChunk:
		if b := bulkIn[m.streamID]; b != nil {
			done, ok := s.assembleBulk(sc, m.streamID, b, m.flags, plain)
			if done {
				delete(bulkIn, m.streamID)
			}
			return ok
		}
		if st := sc.lookupStream(m.streamID); st != nil {
			st.deliverChunk(m.flags, plain)
			return true
		}
		wire.PutBuf(plain) // stream already reset or unknown
	case wire.FrameWindowUpdate:
		if st := sc.lookupStream(m.streamID); st != nil {
			st.grantFromPeer(plain)
		}
		wire.PutBuf(plain)
	case wire.FrameReset:
		if b := bulkIn[m.streamID]; b != nil {
			delete(bulkIn, m.streamID)
			wire.PutBuf(b.env)
			wire.PutBuf(b.data)
		}
		if st := sc.lookupStream(m.streamID); st != nil {
			// Terminating cancels the handler's context promptly and
			// fails its blocked Sends — the client walked away.
			st.resetFromPeer(plain)
		}
		wire.PutBuf(plain)
	case wire.FrameCancel:
		wire.PutBuf(plain)
		if b := bulkIn[m.streamID]; b != nil {
			delete(bulkIn, m.streamID)
			wire.PutBuf(b.env)
			wire.PutBuf(b.data)
		}
		sc.cancelStream(m.streamID)
	case wire.FramePing:
		wire.PutBuf(plain)
		_ = sc.tr.send(wire.FramePong, m.streamID, nil)
	case wire.FrameGoAway:
		wire.PutBuf(plain)
		return false
	default:
		wire.PutBuf(plain)
	}
	return true
}

// enqueue admits one decoded call to the receive queue; false means the
// server is shutting down and the read loop should exit.
func (s *Server) enqueue(call *serverCall) bool {
	select {
	case s.recvQ <- call:
		return true
	case <-s.closed:
		wire.PutBuf(call.raw)
		wire.PutBuf(call.bulkData)
		if call.stream != nil {
			call.stream.terminate(ErrUnavailable, false)
		}
		return false
	default:
		// Receive queue full: shed load with NoResource, the overload
		// behavior the paper's error taxonomy records.
		if call.stream != nil {
			call.stream.terminate(Errorf(trace.NoResource, "server receive queue full"), true)
		} else {
			s.reject(call.conn, call.streamID, trace.NoResource, "server receive queue full")
		}
		wire.PutBuf(call.raw)
		wire.PutBuf(call.bulkData)
		return true
	}
}

// acceptStream registers a new inbound stream eagerly — chunks may arrive
// before a worker decodes the open envelope, and the stream must exist to
// receive them. Its send window starts at zero; the worker installs the
// client's declared window after the decode. False means shutdown.
func (s *Server) acceptStream(sc *serverConn, streamID uint64, env []byte) bool {
	if t := s.opts.ShedThreshold; t > 0 && len(s.recvQ) >= t {
		st := &Status{Code: trace.Unavailable, Message: "server overloaded: load shed"}
		_ = sc.tr.sendReset(streamID, st)
		if s.opts.Robustness != nil {
			method := ""
			if req, err := parseRequest(env); err == nil {
				method = req.Method
			}
			s.opts.Robustness.CallShed(method)
		}
		wire.PutBuf(env)
		return true
	}
	st := newStream(sc.tr, streamID, 0)
	st.sc = sc
	sc.addStream(streamID, st)
	call := &serverCall{
		conn:     sc,
		streamID: streamID,
		raw:      env,
		stream:   st,
		readDone: time.Now(),
	}
	return s.enqueue(call)
}

// assembleBulk folds one chunk into a bulk-lane request assembly. done
// reports the assembly finished (successfully or not); ok=false means the
// server is shutting down.
func (s *Server) assembleBulk(sc *serverConn, streamID uint64, b *serverBulk, flags byte, data []byte) (done, ok bool) {
	if len(b.data)+len(data) > wire.MaxFrameSize {
		// A well-behaved client caps bulk payloads at MaxFrameSize; this
		// peer did not.
		wire.PutBuf(data)
		wire.PutBuf(b.env)
		wire.PutBuf(b.data)
		s.reject(sc, streamID, trace.InvalidArgument, "bulk request exceeds maximum size")
		return true, true
	}
	if b.data == nil && flags&chunkEndMsg != 0 {
		b.data = data // single-chunk payload: zero-copy handoff
	} else {
		if b.data == nil {
			b.data = wire.GetBuf(2 * len(data))
		}
		b.data = append(b.data, data...)
		wire.PutBuf(data)
	}
	if flags&chunkEndMsg == 0 {
		return false, true
	}
	if t := s.opts.ShedThreshold; t > 0 && len(s.recvQ) >= t {
		s.shed(sc, streamID, b.env)
		wire.PutBuf(b.env)
		wire.PutBuf(b.data)
		return true, true
	}
	call := &serverCall{
		conn:     sc,
		streamID: streamID,
		raw:      b.env,
		bulkData: b.data,
		readDone: b.readStart,
	}
	return true, s.enqueue(call)
}

// shed rejects one request at the shedding threshold. The envelope is
// parsed only on this (rare, already-failing) path so the shed counter
// can be attributed to a method; the request is not decompressed.
func (s *Server) shed(sc *serverConn, streamID uint64, plain []byte) {
	s.reject(sc, streamID, trace.Unavailable, "server overloaded: load shed")
	if s.opts.Robustness == nil {
		return
	}
	method := ""
	if req, err := parseRequest(plain); err == nil {
		method = req.Method
	}
	s.opts.Robustness.CallShed(method)
}

// reject sends an error response without involving the worker pool.
func (s *Server) reject(sc *serverConn, streamID uint64, code trace.ErrorCode, msg string) {
	resp := response{Code: code, Message: msg}
	buf := appendResponse(wire.GetBuf(len(msg)+envelopeOverhead), &resp)
	_ = sc.tr.send(wire.FrameResponse, streamID, buf)
	wire.PutBuf(buf)
}

// worker drains the receive queue: decode, deadline setup, handler
// invocation, and response enqueue.
func (s *Server) worker() {
	defer s.pool.Done()
	for {
		select {
		case call := <-s.recvQ:
			s.handle(call)
		case <-s.closed:
			// Drain remaining work before exiting so accepted requests
			// are answered.
			for {
				select {
				case call := <-s.recvQ:
					s.handle(call)
				default:
					return
				}
			}
		}
	}
}

// Load returns the server's instantaneous load estimate: queued requests
// plus handlers currently executing. It is cheap enough to read on every
// response and is what the response envelope's load field reports.
func (s *Server) Load() int {
	return len(s.recvQ) + int(s.inflight.Load())
}

func (s *Server) handle(call *serverCall) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if call.stream != nil {
		// Stream open: fault injection covers unary calls only; streams
		// pass through (they are outside the paper's sampled RPC classes).
		s.handleBidi(call)
		return
	}
	req := &call.req
	s.mu.RLock()
	err := parseRequestInto(req, call.raw, s.intern)
	var h Handler
	var intcpt []ServerInterceptor
	if err == nil {
		h = s.handlers[req.Method]
		intcpt = s.intcpt
	}
	s.mu.RUnlock()
	if err != nil {
		s.reject(call.conn, call.streamID, trace.Internal, err.Error())
		wire.PutBuf(call.raw)
		wire.PutBuf(call.bulkData)
		return
	}
	payload := req.Payload
	if call.bulkData != nil {
		// Bulk-lane request: the payload arrived as chunks, never
		// compressed, reassembled into its own pooled buffer.
		payload = call.bulkData
	} else if req.Compressed {
		payload, err = s.comp.Decompress(payload)
		if err != nil {
			s.reject(call.conn, call.streamID, trace.Internal, "decompress: "+err.Error())
			wire.PutBuf(call.raw)
			return
		}
	}
	// The paper counts decrypt+parse inside ServerRecvQueue (§3.1); decode
	// happened between readDone and now, so the measurement matches.
	recvQueue := time.Since(call.readDone)
	req.Payload = payload

	// Server-scope fault decision, keyed by the envelope's call ID and
	// attempt number so schedules replay deterministically (see
	// internal/faultplane).
	var dec faultplane.Decision
	if s.opts.Faults != nil {
		dec = s.opts.Faults.Decide(faultplane.ScopeServer, req.Method, faultplane.Key{
			Seq:     req.CallSeq - 1,
			Have:    req.CallSeq > 0,
			Attempt: req.Attempt,
		})
		if dec.Reject != trace.OK {
			s.reject(call.conn, call.streamID, dec.Reject, "fault injection: rejected")
			wire.PutBuf(call.raw)
			wire.PutBuf(call.bulkData)
			return
		}
		if dec.Drop {
			// The response vanishes; the client's deadline expires.
			wire.PutBuf(call.raw)
			wire.PutBuf(call.bulkData)
			return
		}
		if dec.Corrupt {
			faultplane.CorruptPayload(payload)
		}
	}

	ctx := ContextWithTrace(context.Background(), TraceContext{
		TraceID: req.TraceID,
		SpanID:  req.SpanID,
	})
	var cancel context.CancelFunc
	if req.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	call.conn.storeCancel(call.streamID, cancel)
	defer func() {
		call.conn.deleteCancel(call.streamID)
		cancel()
	}()

	if dec.Delay > 0 {
		// Injected delay occupies this worker — the mechanism by which
		// overload incidents genuinely saturate the serving pool rather
		// than simulating it. Bounded by the request deadline.
		t := time.NewTimer(dec.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	var out []byte
	var herr error
	appStart := time.Now()
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Deadline burned (typically by an injected delay) before the
		// handler ran.
		herr = ctxErrToStatus(ctxErr)
	} else if h == nil {
		herr = Errorf(trace.EntityNotFound, "no handler for method %q", req.Method)
	} else {
		invoke := h
		for i := len(intcpt) - 1; i >= 0; i-- {
			mid, next := intcpt[i], invoke
			invoke = func(c context.Context, p []byte) ([]byte, error) {
				return mid(c, req.Method, p, next)
			}
		}
		out, herr = invoke(ctx, payload)
		if ctxErr := ctx.Err(); herr == nil && ctxErr != nil {
			herr = ctxErrToStatus(ctxErr)
		} else if herr != nil && (errors.Is(herr, context.DeadlineExceeded) || errors.Is(herr, context.Canceled)) {
			// A handler returning its ctx.Err() means the propagated
			// deadline or a cancel fired: surface the canonical code, not
			// Internal — the client may see this response before its own
			// local timer when both ends expire at the same instant.
			herr = ctxErrToStatus(herr)
		}
	}
	appDone := time.Now()

	st := StatusFromError(herr)
	sr := &serverResponse{
		streamID: call.streamID,
		method:   req.Method,
		// The handler's response may alias the request envelope (echo
		// servers return their input), so the pooled request buffers ride
		// along and are released only after the response is sealed.
		reqBuf:    call.raw,
		reqBulk:   call.bulkData,
		appDone:   appDone,
		readDone:  call.readDone,
		recvQueue: recvQueue,
		app:       appDone.Sub(appStart),
	}
	sr.resp.Code = st.Code
	sr.resp.Payload = out
	if st.Code != trace.OK {
		sr.resp.Message = st.Message
		sr.resp.Payload = nil
	}
	select {
	case call.conn.sendQ <- sr:
	case <-call.conn.closed:
	}
}

func ctxErrToStatus(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCancelled
}

// writeLoop drains one connection's send queue: compress, marshal,
// encrypt, write — the server side of RespProcStack. Like the client's
// sendLoop it is a batching drain: it blocks on the first queued response,
// drains further pending responses non-blockingly up to sendBatchBytes,
// and flushes the whole batch with a single write.
func (s *Server) writeLoop(sc *serverConn) {
	defer s.conns.Done()
	batch := make([]*serverResponse, 0, 32)
	envs := make([][]byte, 0, 32)
	var scr sealScratch
	for {
		select {
		case sr := <-sc.sendQ:
			batch, envs = batch[:0], envs[:0]
			size := 0
			batch, envs, size = s.prepareResponse(sc, sr, batch, envs, size)
		drain:
			for size < sendBatchBytes {
				select {
				case next := <-sc.sendQ:
					batch, envs, size = s.prepareResponse(sc, next, batch, envs, size)
				default:
					break drain
				}
			}
			s.flushResponses(sc, batch, envs, &scr)
		case <-sc.closed:
			return
		}
	}
}

// prepareResponse compresses and marshals one queued response into a
// pooled envelope, appending it to the batch. Payloads at or past the
// bulk threshold switch to the bulk lane: the envelope carries only the
// size, and the payload leaves as chunk frames sealed straight from the
// handler's buffer — no copy into the envelope, no compression.
func (s *Server) prepareResponse(sc *serverConn, sr *serverResponse, batch []*serverResponse, envs [][]byte, size int) ([]*serverResponse, [][]byte, int) {
	procStart := time.Now()
	resp := &sr.resp
	if th := s.opts.BulkThreshold; th > 0 && len(resp.Payload) >= th && len(resp.Payload) <= wire.MaxFrameSize {
		sr.bulk = true
		sr.bulkOut = resp.Payload
		resp.BulkSize = uint64(len(resp.Payload))
		resp.Payload = nil
	} else if s.opts.Compression != compressor.None && len(resp.Payload) >= s.opts.CompressThreshold &&
		sc.gate.shouldCompress(sr.method, resp.Payload) {
		inLen := len(resp.Payload)
		if compressed, err := s.comp.Compress(resp.Payload); err == nil {
			sc.gate.observe(sr.method, inLen, len(compressed))
			if len(compressed) < inLen {
				resp.Payload = compressed
				resp.Compressed = true
			}
		}
	}
	resp.Timings = serverTimings{
		RecvQueue: sr.recvQueue,
		App:       sr.app,
		SendQueue: procStart.Sub(sr.appDone),
	}
	// Piggyback the current load estimate so clients balance on
	// near-real-time signals without a separate control RPC.
	resp.Load = uint32(s.Load())
	// Marshal once to measure RespProc including serialization; the
	// timing fields are filled before the final marshal so RespProc is
	// a lower bound measured up to the write.
	env := appendResponse(wire.GetBuf(len(resp.Payload)+envelopeOverhead), resp)
	resp.Timings.RespProc = time.Since(procStart)
	resp.Timings.Elapsed = time.Since(sr.readDone)
	env = appendResponse(env[:0], resp)
	if len(env)+secure.Overhead > wire.MaxFrameSize {
		wire.PutBuf(env)
		wire.PutBuf(sr.reqBuf)
		wire.PutBuf(sr.reqBulk)
		return batch, envs, size // oversize: drop; the client's deadline expires
	}
	return append(batch, sr), append(envs, env), size + len(env) + len(sr.bulkOut)
}

// flushResponses seals every prepared envelope into the transport's write
// buffer, flushes them with a single write, and releases the pooled
// request and response buffers. A failed write is not reported here — the
// connection's read loop observes the socket error and tears down.
func (s *Server) flushResponses(sc *serverConn, batch []*serverResponse, envs [][]byte, scr *sealScratch) {
	if len(batch) == 0 {
		return
	}
	// Pipelining phase: large bulk payloads are chunked and handed to the
	// codec pool before the send lock is taken, so workers seal them while
	// this goroutine seals the small envelopes inline. Harvest below is
	// in submit order, preserving frame order on the wire.
	p := sc.tr.codec
	pipelined := false
	if p != nil {
		scr.jobs, scr.n = scr.jobs[:0], scr.n[:0]
		if p.enter() {
			pipelined = true
			for _, sr := range batch {
				k := 0
				if sr.bulk && len(sr.bulkOut) > codecInlineMax {
					before := len(scr.jobs)
					scr.jobs = p.submitSealChunks(scr.jobs, sr.streamID, sr.bulkOut, 0)
					k = len(scr.jobs) - before
				}
				scr.n = append(scr.n, k)
			}
		}
	}
	sc.tr.lockSend()
	var err error
	ji := 0
	for i, sr := range batch {
		k := 0
		if pipelined {
			k = scr.n[i]
		}
		if sr.bulk {
			// Envelope first, then the payload chunks on the same stream —
			// all in this batch's single vectored write. Bulk-unary chunks
			// are exempt from stream credit: the request bounded them.
			if err == nil {
				err = sc.tr.appendLocked(wire.FrameBulkResponse, sr.streamID, envs[i])
			}
			if k > 0 {
				// Harvest even after an earlier error: every submitted job
				// must be awaited and its buffer released.
				if herr := sc.tr.appendSealedLocked(sr.streamID, scr.jobs[ji:ji+k], err != nil); err == nil {
					err = herr
				}
				ji += k
			} else if err == nil {
				err = sc.tr.appendChunkedLocked(sr.streamID, sr.bulkOut, 0)
			}
			continue
		}
		if err == nil {
			err = sc.tr.appendLocked(wire.FrameResponse, sr.streamID, envs[i])
		}
	}
	if err == nil {
		_ = sc.tr.flushLocked()
	}
	sc.tr.unlockSend()
	if pipelined {
		p.exit()
	}
	for i, sr := range batch {
		wire.PutBuf(envs[i])
		wire.PutBuf(sr.reqBuf)
		wire.PutBuf(sr.reqBulk)
	}
}

// Close stops accepting, closes all listeners, and releases the worker
// pool. In-flight handlers run to completion.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.lnMu.Lock()
		for l := range s.listeners {
			l.Close()
		}
		s.lnMu.Unlock()
		s.pool.Wait()
	})
}
