package stubby

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/faultplane"
	"rpcscale/internal/secure"
	"rpcscale/internal/trace"
	"rpcscale/internal/wire"
)

// Handler serves one RPC method: it receives the request payload and
// returns the response payload or an error (ideally a *Status).
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// ServerInterceptor wraps handler invocation; interceptors compose
// outermost-first, mirroring Stubby/gRPC middleware.
type ServerInterceptor func(ctx context.Context, method string, payload []byte, next Handler) ([]byte, error)

// Server accepts connections and dispatches RPCs to registered handlers
// through a bounded receive queue and a fixed worker pool — the structure
// whose queue the paper's ServerRecvQueue component measures.
type Server struct {
	opts Options
	comp *compressor.Compressor

	mu             sync.RWMutex
	handlers       map[string]Handler
	streamHandlers map[string]StreamHandler
	methodNames    map[string]string // interned registered names, keyed by themselves
	intcpt         []ServerInterceptor

	// intern is internMethod bound once at construction so the per-request
	// decode path does not allocate a method-value closure.
	intern func([]byte) string

	recvQ chan *serverCall

	lnMu      sync.Mutex
	listeners map[net.Listener]struct{}

	conns sync.WaitGroup // active connection readers + writers
	pool  sync.WaitGroup // worker pool

	closeOnce sync.Once
	closed    chan struct{}
}

// serverCall is one queued request with the instrumentation timestamps
// accumulated so far. raw is a pooled recv buffer: ownership travels with
// the call, and the buffer is released only after the response envelope is
// sealed (the handler's payload — and possibly its response — alias it).
type serverCall struct {
	conn     *serverConn
	streamID uint64
	req      request   // decoded on a worker; Payload aliases raw
	raw      []byte    // pooled decrypted envelope bytes
	readDone time.Time // when the request frame finished arriving
}

// serverConn is the per-connection state: the transport plus the response
// send queue drained by a writer goroutine (ServerSendQueue).
type serverConn struct {
	tr     *transport
	sendQ  chan *serverResponse
	closed chan struct{}
	once   sync.Once

	cancelMu sync.Mutex
	cancels  map[uint64]context.CancelFunc // in-flight calls by stream ID
}

func (c *serverConn) shutdown() {
	c.once.Do(func() {
		close(c.closed)
		c.tr.close()
	})
}

func (c *serverConn) storeCancel(id uint64, cancel context.CancelFunc) {
	c.cancelMu.Lock()
	c.cancels[id] = cancel
	c.cancelMu.Unlock()
}

func (c *serverConn) deleteCancel(id uint64) {
	c.cancelMu.Lock()
	delete(c.cancels, id)
	c.cancelMu.Unlock()
}

func (c *serverConn) cancelStream(id uint64) {
	c.cancelMu.Lock()
	cancel := c.cancels[id]
	c.cancelMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// serverResponse is a response waiting in the send queue.
type serverResponse struct {
	streamID uint64
	// raw, when set, is a pre-marshalled pooled frame payload (stream
	// items); resp drives the normal final-response path.
	raw       []byte
	resp      response
	reqBuf    []byte    // pooled request envelope, released after the response seals
	appDone   time.Time // handler completion: send-queue time starts here
	readDone  time.Time // request arrival, for Elapsed
	recvQueue time.Duration
	app       time.Duration
}

// NewServer returns a server with the given options.
func NewServer(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:           o,
		comp:           compressor.New(o.Compression, o.CompressorStats),
		handlers:       make(map[string]Handler),
		streamHandlers: make(map[string]StreamHandler),
		methodNames:    make(map[string]string),
		recvQ:          make(chan *serverCall, o.RecvQueueLen),
		listeners:      make(map[net.Listener]struct{}),
		closed:         make(chan struct{}),
	}
	s.intern = s.internMethod
	for i := 0; i < o.Workers; i++ {
		s.pool.Add(1)
		go s.worker()
	}
	return s
}

// Register installs a handler for a fully qualified method name. It panics
// on duplicate registration, which is a programming error.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("stubby: duplicate handler for %q", method))
	}
	if _, dup := s.streamHandlers[method]; dup {
		panic(fmt.Sprintf("stubby: %q already registered as a stream", method))
	}
	s.handlers[method] = h
	s.methodNames[method] = method
}

// internMethod resolves a decoded method name against the registration
// table so steady-state request decode reuses the registered string
// instead of allocating one per call. Unknown methods (which fail lookup
// anyway) pay the allocation. Caller must hold s.mu.
func (s *Server) internMethod(b []byte) string {
	if m, ok := s.methodNames[string(b)]; ok {
		return m
	}
	return string(b)
}

// Intercept appends a server interceptor; later additions run closer to
// the handler.
func (s *Server) Intercept(i ServerInterceptor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intcpt = append(s.intcpt, i)
}

// Serve accepts connections on l until the server or listener closes.
// It always returns a non-nil error; after Close it returns nil-wrapped
// ErrServerClosed semantics via net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.lnMu.Lock()
	select {
	case <-s.closed:
		s.lnMu.Unlock()
		l.Close()
		return net.ErrClosed
	default:
	}
	s.listeners[l] = struct{}{}
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		tr, err := newTransport(conn, s.opts.Secret, "s2c", "c2s", s.opts.EncryptionStats)
		if err != nil {
			conn.Close()
			continue
		}
		sc := &serverConn{
			tr:      tr,
			sendQ:   make(chan *serverResponse, s.opts.SendQueueLen),
			cancels: make(map[uint64]context.CancelFunc),
			closed:  make(chan struct{}),
		}
		s.conns.Add(2)
		go s.readLoop(sc)
		go s.writeLoop(sc)
	}
}

// readLoop pulls frames off one connection and enqueues requests.
func (s *Server) readLoop(sc *serverConn) {
	defer s.conns.Done()
	defer sc.shutdown()
	for {
		f, plain, err := sc.tr.recv()
		if err != nil {
			// EOF, a closed socket, or a connection-level failure;
			// nothing to salvage either way.
			return
		}
		switch f.Type {
		case wire.FrameRequest:
			if t := s.opts.ShedThreshold; t > 0 && len(s.recvQ) >= t {
				// Load shedding: past the configured queue depth, new
				// arrivals would only queue toward deadlines they will
				// miss, so reject them immediately with Unavailable —
				// the fail-fast overload posture the paper's §7 retry
				// analysis assumes servers adopt.
				s.shed(sc, f.StreamID, plain)
				wire.PutBuf(plain)
				continue
			}
			call := &serverCall{
				conn:     sc,
				streamID: f.StreamID,
				raw:      plain, // pooled; ownership travels with the call
				readDone: time.Now(),
			}
			select {
			case s.recvQ <- call:
			case <-s.closed:
				wire.PutBuf(plain)
				return
			default:
				// Receive queue full: shed load with NoResource, the
				// overload behavior the paper's error taxonomy records.
				wire.PutBuf(plain)
				s.reject(sc, f.StreamID, trace.NoResource, "server receive queue full")
			}
		case wire.FrameCancel:
			wire.PutBuf(plain)
			sc.cancelStream(f.StreamID)
		case wire.FramePing:
			wire.PutBuf(plain)
			_ = sc.tr.send(wire.FramePong, f.StreamID, nil)
		case wire.FrameGoAway:
			wire.PutBuf(plain)
			return
		default:
			wire.PutBuf(plain)
		}
	}
}

// shed rejects one request at the shedding threshold. The envelope is
// parsed only on this (rare, already-failing) path so the shed counter
// can be attributed to a method; the request is not decompressed.
func (s *Server) shed(sc *serverConn, streamID uint64, plain []byte) {
	s.reject(sc, streamID, trace.Unavailable, "server overloaded: load shed")
	if s.opts.Robustness == nil {
		return
	}
	method := ""
	if req, err := parseRequest(plain); err == nil {
		method = req.Method
	}
	s.opts.Robustness.CallShed(method)
}

// reject sends an error response without involving the worker pool.
func (s *Server) reject(sc *serverConn, streamID uint64, code trace.ErrorCode, msg string) {
	resp := response{Code: code, Message: msg}
	buf := appendResponse(wire.GetBuf(len(msg)+envelopeOverhead), &resp)
	_ = sc.tr.send(wire.FrameResponse, streamID, buf)
	wire.PutBuf(buf)
}

// worker drains the receive queue: decode, deadline setup, handler
// invocation, and response enqueue.
func (s *Server) worker() {
	defer s.pool.Done()
	for {
		select {
		case call := <-s.recvQ:
			s.handle(call)
		case <-s.closed:
			// Drain remaining work before exiting so accepted requests
			// are answered.
			for {
				select {
				case call := <-s.recvQ:
					s.handle(call)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) handle(call *serverCall) {
	req := &call.req
	s.mu.RLock()
	err := parseRequestInto(req, call.raw, s.intern)
	var h Handler
	var sh StreamHandler
	var intcpt []ServerInterceptor
	if err == nil {
		h = s.handlers[req.Method]
		sh = s.streamHandlers[req.Method]
		intcpt = s.intcpt
	}
	s.mu.RUnlock()
	if err != nil {
		s.reject(call.conn, call.streamID, trace.Internal, err.Error())
		wire.PutBuf(call.raw)
		return
	}
	payload := req.Payload
	if req.Compressed {
		payload, err = s.comp.Decompress(payload)
		if err != nil {
			s.reject(call.conn, call.streamID, trace.Internal, "decompress: "+err.Error())
			wire.PutBuf(call.raw)
			return
		}
	}
	// The paper counts decrypt+parse inside ServerRecvQueue (§3.1); decode
	// happened between readDone and now, so the measurement matches.
	recvQueue := time.Since(call.readDone)
	req.Payload = payload

	if sh != nil {
		// Fault injection covers unary calls only; streams pass through.
		s.handleStream(call, req, sh, recvQueue)
		return
	}

	// Server-scope fault decision, keyed by the envelope's call ID and
	// attempt number so schedules replay deterministically (see
	// internal/faultplane).
	var dec faultplane.Decision
	if s.opts.Faults != nil {
		dec = s.opts.Faults.Decide(faultplane.ScopeServer, req.Method, faultplane.Key{
			Seq:     req.CallSeq - 1,
			Have:    req.CallSeq > 0,
			Attempt: req.Attempt,
		})
		if dec.Reject != trace.OK {
			s.reject(call.conn, call.streamID, dec.Reject, "fault injection: rejected")
			wire.PutBuf(call.raw)
			return
		}
		if dec.Drop {
			// The response vanishes; the client's deadline expires.
			wire.PutBuf(call.raw)
			return
		}
		if dec.Corrupt {
			faultplane.CorruptPayload(payload)
		}
	}

	ctx := ContextWithTrace(context.Background(), TraceContext{
		TraceID: req.TraceID,
		SpanID:  req.SpanID,
	})
	var cancel context.CancelFunc
	if req.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	call.conn.storeCancel(call.streamID, cancel)
	defer func() {
		call.conn.deleteCancel(call.streamID)
		cancel()
	}()

	if dec.Delay > 0 {
		// Injected delay occupies this worker — the mechanism by which
		// overload incidents genuinely saturate the serving pool rather
		// than simulating it. Bounded by the request deadline.
		t := time.NewTimer(dec.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	var out []byte
	var herr error
	appStart := time.Now()
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Deadline burned (typically by an injected delay) before the
		// handler ran.
		herr = ctxErrToStatus(ctxErr)
	} else if h == nil {
		herr = Errorf(trace.EntityNotFound, "no handler for method %q", req.Method)
	} else {
		invoke := h
		for i := len(intcpt) - 1; i >= 0; i-- {
			mid, next := intcpt[i], invoke
			invoke = func(c context.Context, p []byte) ([]byte, error) {
				return mid(c, req.Method, p, next)
			}
		}
		out, herr = invoke(ctx, payload)
		if ctxErr := ctx.Err(); herr == nil && ctxErr != nil {
			herr = ctxErrToStatus(ctxErr)
		}
	}
	appDone := time.Now()

	st := StatusFromError(herr)
	sr := &serverResponse{
		streamID: call.streamID,
		// The handler's response may alias the request envelope (echo
		// servers return their input), so the pooled request buffer rides
		// along and is released only after the response is sealed.
		reqBuf:    call.raw,
		appDone:   appDone,
		readDone:  call.readDone,
		recvQueue: recvQueue,
		app:       appDone.Sub(appStart),
	}
	sr.resp.Code = st.Code
	sr.resp.Payload = out
	if st.Code != trace.OK {
		sr.resp.Message = st.Message
		sr.resp.Payload = nil
	}
	select {
	case call.conn.sendQ <- sr:
	case <-call.conn.closed:
	}
}

func ctxErrToStatus(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCancelled
}

// writeLoop drains one connection's send queue: compress, marshal,
// encrypt, write — the server side of RespProcStack. Like the client's
// sendLoop it is a batching drain: it blocks on the first queued response,
// drains further pending responses non-blockingly up to sendBatchBytes,
// and flushes the whole batch with a single write.
func (s *Server) writeLoop(sc *serverConn) {
	defer s.conns.Done()
	batch := make([]*serverResponse, 0, 32)
	envs := make([][]byte, 0, 32)
	for {
		select {
		case sr := <-sc.sendQ:
			batch, envs = batch[:0], envs[:0]
			size := 0
			batch, envs, size = s.prepareResponse(sr, batch, envs, size)
		drain:
			for size < sendBatchBytes {
				select {
				case next := <-sc.sendQ:
					batch, envs, size = s.prepareResponse(next, batch, envs, size)
				default:
					break drain
				}
			}
			s.flushResponses(sc, batch, envs)
		case <-sc.closed:
			return
		}
	}
}

// prepareResponse compresses and marshals one queued response into a
// pooled envelope, appending it to the batch. Stream items arrive
// pre-marshalled in sr.raw and pass straight through.
func (s *Server) prepareResponse(sr *serverResponse, batch []*serverResponse, envs [][]byte, size int) ([]*serverResponse, [][]byte, int) {
	env := sr.raw
	if env == nil {
		procStart := time.Now()
		resp := &sr.resp
		if s.opts.Compression != compressor.None && len(resp.Payload) >= s.opts.CompressThreshold {
			if compressed, err := s.comp.Compress(resp.Payload); err == nil && len(compressed) < len(resp.Payload) {
				resp.Payload = compressed
				resp.Compressed = true
			}
		}
		resp.Timings = serverTimings{
			RecvQueue: sr.recvQueue,
			App:       sr.app,
			SendQueue: procStart.Sub(sr.appDone),
		}
		// Marshal once to measure RespProc including serialization; the
		// timing fields are filled before the final marshal so RespProc is
		// a lower bound measured up to the write.
		env = appendResponse(wire.GetBuf(len(resp.Payload)+envelopeOverhead), resp)
		resp.Timings.RespProc = time.Since(procStart)
		resp.Timings.Elapsed = time.Since(sr.readDone)
		env = appendResponse(env[:0], resp)
	}
	if len(env)+secure.Overhead > wire.MaxFrameSize {
		wire.PutBuf(env)
		wire.PutBuf(sr.reqBuf)
		return batch, envs, size // oversize: drop; the client's deadline expires
	}
	return append(batch, sr), append(envs, env), size + len(env)
}

// flushResponses seals every prepared envelope into the transport's write
// buffer, flushes them with a single write, and releases the pooled
// request and response buffers. A failed write is not reported here — the
// connection's read loop observes the socket error and tears down.
func (s *Server) flushResponses(sc *serverConn, batch []*serverResponse, envs [][]byte) {
	if len(batch) == 0 {
		return
	}
	sc.tr.lockSend()
	var err error
	for i, sr := range batch {
		if err = sc.tr.appendLocked(wire.FrameResponse, sr.streamID, envs[i]); err != nil {
			break
		}
	}
	if err == nil {
		_ = sc.tr.flushLocked()
	}
	sc.tr.unlockSend()
	for i, sr := range batch {
		wire.PutBuf(envs[i])
		wire.PutBuf(sr.reqBuf)
	}
}

// Close stops accepting, closes all listeners, and releases the worker
// pool. In-flight handlers run to completion.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.lnMu.Lock()
		for l := range s.listeners {
			l.Close()
		}
		s.lnMu.Unlock()
		s.pool.Wait()
	})
}
