// Package secure provides per-connection payload encryption for the RPC
// stack. Every RPC in the studied fleet is encrypted in transit; the paper
// counts encryption inside the "RPC Processing and Network Stack" latency
// component and inside the cycle tax. This implementation uses AES-GCM
// with a per-connection session key established by the transport
// handshake.
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

// Overhead is the per-message ciphertext expansion: nonce + GCM tag.
const Overhead = 12 + 16

// ErrDecrypt reports an authentication failure or malformed ciphertext.
var ErrDecrypt = errors.New("secure: message authentication failed")

// Stats counts encryption work for cycle attribution.
type Stats struct {
	Seals          atomic.Uint64
	Opens          atomic.Uint64
	BytesEncrypted atomic.Uint64
}

// Session encrypts and decrypts messages under one session key. Each
// message uses a fresh counter-derived nonce; a Session must only be used
// by one direction of one connection.
//
// Concurrency contract: the Open* methods are safe for concurrent use —
// the nonce travels inside the message and the GCM AEAD itself is
// stateless — but the Seal* methods on the Session share one nonce
// scratch buffer and must be serialized (the transport holds its
// per-direction lock across them). To seal from several goroutines at
// once, give each its own Worker (NewWorker): workers draw unique nonces
// from the session's shared counter, so concurrent and out-of-order
// sealing stays safe.
type Session struct {
	aead  cipher.AEAD
	ctr   atomic.Uint64
	stats *Stats
	// nonce is scratch for SealAppend: a stack-local nonce escapes through
	// the cipher.AEAD interface call and would cost one heap allocation
	// per message.
	nonce [12]byte
}

// Worker is per-goroutine sealing state for a Session: it carries its own
// nonce scratch while drawing nonce values from the session's shared
// counter, so any number of workers may seal concurrently — each message
// still gets a unique nonce, and the peer recovers it from the message
// prefix regardless of arrival order. A Worker itself is not safe for
// concurrent use; give each sealing goroutine its own.
type Worker struct {
	s     *Session
	nonce [12]byte
}

// NewWorker returns sealing state for one concurrent goroutine.
func (s *Session) NewWorker() *Worker {
	return &Worker{s: s}
}

// SealAppendAAD is Session.SealAppendAAD using this worker's private
// nonce scratch; see that method for the format and aliasing rules.
func (w *Worker) SealAppendAAD(dst, plaintext, aad []byte) []byte {
	s := w.s
	s.stats.Seals.Add(1)
	s.stats.BytesEncrypted.Add(uint64(len(plaintext)))
	binary.BigEndian.PutUint64(w.nonce[4:], s.ctr.Add(1))
	dst = append(dst, w.nonce[:]...)
	return s.aead.Seal(dst, w.nonce[:], plaintext, aad)
}

// NewSessionKey returns a fresh random session key.
func NewSessionKey() ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("secure: generating key: %w", err)
	}
	return key, nil
}

// DeriveKey derives a session key deterministically from a shared secret
// and a direction label. The loopback transport uses this in place of a
// full key exchange: both ends know the secret out of band.
func DeriveKey(secret []byte, direction string) []byte {
	h := sha256.New()
	h.Write(secret)
	h.Write([]byte{0})
	h.Write([]byte(direction))
	return h.Sum(nil)
}

// NewSession returns a session using the given 32-byte key. stats may be
// nil.
func NewSession(key []byte, stats *Stats) (*Session, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("secure: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &Session{aead: aead, stats: stats}, nil
}

// Stats returns the shared counters.
func (s *Session) Stats() *Stats { return s.stats }

// Seal encrypts plaintext, producing nonce||ciphertext||tag in a fresh
// buffer. The data plane uses SealAppend with a pooled buffer instead.
func (s *Session) Seal(plaintext []byte) []byte {
	return s.SealAppend(make([]byte, 0, len(plaintext)+Overhead), plaintext)
}

// SealAppend encrypts plaintext and appends nonce||ciphertext||tag to dst,
// returning the extended slice. When dst has capacity for
// len(plaintext)+Overhead more bytes, SealAppend does not allocate. dst
// must not overlap plaintext.
func (s *Session) SealAppend(dst, plaintext []byte) []byte {
	return s.SealAppendAAD(dst, plaintext, nil)
}

// SealAppendAAD is SealAppend with additional authenticated data: aad is
// bound into the GCM tag without being encrypted, so clear-text framing
// bytes (the bulk lane's chunk flags) travel outside the ciphertext yet
// cannot be tampered with. The peer must pass the identical aad to
// OpenAppendAAD. This is the stack's iovec-style seal: the plaintext
// segment is ciphered straight from the caller's buffer into dst in one
// pass, with the out-of-band segment authenticated rather than copied.
func (s *Session) SealAppendAAD(dst, plaintext, aad []byte) []byte {
	s.stats.Seals.Add(1)
	s.stats.BytesEncrypted.Add(uint64(len(plaintext)))
	binary.BigEndian.PutUint64(s.nonce[4:], s.ctr.Add(1))
	dst = append(dst, s.nonce[:]...)
	return s.aead.Seal(dst, s.nonce[:], plaintext, aad)
}

// Open decrypts a message produced by Seal into a fresh buffer. The data
// plane uses OpenAppend with a pooled buffer instead.
func (s *Session) Open(msg []byte) ([]byte, error) {
	return s.OpenAppend(nil, msg)
}

// OpenAppend decrypts a message produced by Seal, appending the plaintext
// to dst and returning the extended slice. When dst has capacity for
// len(msg)-Overhead more bytes, OpenAppend does not allocate. dst must
// not overlap msg.
func (s *Session) OpenAppend(dst, msg []byte) ([]byte, error) {
	return s.OpenAppendAAD(dst, msg, nil)
}

// OpenAppendAAD decrypts a message produced by SealAppendAAD, verifying
// that aad matches the additional data bound at seal time. A mismatch —
// like any tampering — yields ErrDecrypt.
func (s *Session) OpenAppendAAD(dst, msg, aad []byte) ([]byte, error) {
	s.stats.Opens.Add(1)
	if len(msg) < Overhead {
		return nil, ErrDecrypt
	}
	nonce, ciphertext := msg[:12], msg[12:]
	out, err := s.aead.Open(dst, nonce, ciphertext, aad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return out, nil
}
