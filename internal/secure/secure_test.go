package secure

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newTestSession(t *testing.T) *Session {
	t.Helper()
	key, err := NewSessionKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := newTestSession(t)
	msgs := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("rpc"), 10000)}
	for _, in := range msgs {
		ct := s.Seal(in)
		if len(ct) != len(in)+Overhead {
			t.Errorf("overhead mismatch: %d != %d + %d", len(ct), len(in), Overhead)
		}
		out, err := s.Open(ct)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(out, in) {
			t.Error("round trip mismatch")
		}
	}
}

func TestSealOpenProperty(t *testing.T) {
	s := newTestSession(t)
	f := func(payload []byte) bool {
		out, err := s.Open(s.Seal(payload))
		return err == nil && bytes.Equal(out, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTamperDetected(t *testing.T) {
	s := newTestSession(t)
	ct := s.Seal([]byte("authentic message"))
	for i := 0; i < len(ct); i += 7 {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 0x01
		if _, err := s.Open(bad); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("flip at %d: got %v, want ErrDecrypt", i, err)
		}
	}
}

func TestShortCiphertext(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Open([]byte("short")); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("got %v", err)
	}
	if _, err := s.Open(nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("got %v", err)
	}
}

func TestNoncesUnique(t *testing.T) {
	s := newTestSession(t)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		ct := s.Seal([]byte("same plaintext"))
		nonce := string(ct[:12])
		if seen[nonce] {
			t.Fatal("nonce reuse detected")
		}
		seen[nonce] = true
	}
}

func TestCrossSessionRejected(t *testing.T) {
	a, b := newTestSession(t), newTestSession(t)
	ct := a.Seal([]byte("for a only"))
	if _, err := b.Open(ct); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("cross-session open: %v", err)
	}
}

func TestDeriveKeyDeterministicAndDirectional(t *testing.T) {
	secret := []byte("shared handshake secret")
	k1 := DeriveKey(secret, "client->server")
	k2 := DeriveKey(secret, "client->server")
	k3 := DeriveKey(secret, "server->client")
	if !bytes.Equal(k1, k2) {
		t.Error("derivation not deterministic")
	}
	if bytes.Equal(k1, k3) {
		t.Error("directions must yield different keys")
	}
	if len(k1) != KeySize {
		t.Errorf("derived key size = %d", len(k1))
	}
	// Derived keys are directly usable.
	s, err := NewSession(k1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := s.Open(s.Seal([]byte("ok"))); err != nil || string(out) != "ok" {
		t.Error("derived-key session round trip failed")
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := NewSession([]byte("short"), nil); err == nil {
		t.Error("short key should be rejected")
	}
}

func TestStatsCounting(t *testing.T) {
	stats := &Stats{}
	key, _ := NewSessionKey()
	s, err := NewSession(key, stats)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.Seal(make([]byte, 100))
	_, _ = s.Open(ct)
	if stats.Seals.Load() != 1 || stats.Opens.Load() != 1 {
		t.Errorf("seals=%d opens=%d", stats.Seals.Load(), stats.Opens.Load())
	}
	if stats.BytesEncrypted.Load() != 100 {
		t.Errorf("bytes = %d", stats.BytesEncrypted.Load())
	}
}
