package secure

import (
	"testing"

	"rpcscale/internal/testutil"
)

// The data plane relies on SealAppend and OpenAppend being allocation-free
// when the destination has capacity; these tests pin that down so a future
// change cannot silently reintroduce a per-message allocation.

func TestSealAppendNoAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	key := DeriveKey([]byte("alloc-test"), "seal")
	s, err := NewSession(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	plaintext := make([]byte, 1024)
	dst := make([]byte, 0, len(plaintext)+Overhead)
	allocs := testing.AllocsPerRun(200, func() {
		dst = s.SealAppend(dst[:0], plaintext)
	})
	if allocs != 0 {
		t.Errorf("SealAppend with capacity: %.1f allocs/op, want 0", allocs)
	}
}

func TestOpenAppendNoAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	key := DeriveKey([]byte("alloc-test"), "open")
	seal, err := NewSession(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	open, err := NewSession(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	plaintext := make([]byte, 1024)
	msg := seal.SealAppend(nil, plaintext)
	dst := make([]byte, 0, len(plaintext))
	allocs := testing.AllocsPerRun(200, func() {
		out, err := open.OpenAppend(dst[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		dst = out
	})
	if allocs != 0 {
		t.Errorf("OpenAppend with capacity: %.1f allocs/op, want 0", allocs)
	}
}

func TestSealOpenAppendRoundTrip(t *testing.T) {
	key := DeriveKey([]byte("roundtrip"), "dir")
	seal, _ := NewSession(key, nil)
	open, _ := NewSession(key, nil)
	for _, n := range []int{0, 1, 16, 1024, 65536} {
		plaintext := make([]byte, n)
		for i := range plaintext {
			plaintext[i] = byte(i)
		}
		msg := seal.SealAppend(make([]byte, 0, n+Overhead), plaintext)
		got, err := open.OpenAppend(make([]byte, 0, n), msg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if string(got) != string(plaintext) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}
