package wire

import (
	"bytes"
	"io"
	"testing"

	"rpcscale/internal/testutil"
)

// countingWriter counts Write calls to verify syscall coalescing.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// countingReader counts Read calls and serves from an in-memory buffer.
type countingReader struct {
	reads int
	r     *bytes.Reader
}

func (r *countingReader) Read(p []byte) (int, error) {
	r.reads++
	return r.r.Read(p)
}

func TestWriterCoalescesBatchIntoOneWrite(t *testing.T) {
	cw := &countingWriter{}
	w := NewWriter(cw)
	payloads := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 2000),
		bytes.Repeat([]byte{3}, 5),
	}
	for i, p := range payloads {
		if err := w.AppendFrame(&Frame{Type: FrameRequest, StreamID: uint64(i + 1), Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Errorf("batch of %d frames used %d writes, want 1", len(payloads), cw.writes)
	}
	r := NewReader(&cw.buf)
	for i, p := range payloads {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.StreamID != uint64(i+1) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestWriterSingleFrameAllocBudget(t *testing.T) {
	if testutil.Instrumented {
		t.Skip("allocation counts differ under instrumented builds")
	}
	w := NewWriter(io.Discard)
	payload := make([]byte, 1024)
	f := &Frame{Type: FrameRequest, StreamID: 7, Payload: payload}
	// Warm the batch buffer so the measurement reflects steady state.
	if err := w.WriteFrame(f); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("steady-state single-frame write: %.1f allocs/op, want <= 1", allocs)
	}
}

func TestSealInPlaceRoundTrip(t *testing.T) {
	cw := &countingWriter{}
	w := NewWriter(cw)
	payload := []byte("sealed in place")
	buf, err := w.BeginFrame(FrameResponse, 42, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, payload...)
	if err := w.EndFrame(buf); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := NewReader(&cw.buf).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameResponse || f.StreamID != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("round trip mismatch: %+v", f)
	}
}

func TestEndFrameLengthMismatch(t *testing.T) {
	w := NewWriter(io.Discard)
	buf, err := w.BeginFrame(FrameRequest, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, "short"...)
	if err := w.EndFrame(buf); err == nil {
		t.Fatal("EndFrame accepted a payload shorter than declared")
	}
}

func TestReaderCoalescesHeaderReads(t *testing.T) {
	// 100 small frames, each a 3-byte header plus 16-byte payload. The old
	// byte-at-a-time header decoding issued one Read per header byte (300+
	// reads); the buffered reader should pull whole windows.
	var stream bytes.Buffer
	const frames = 100
	payload := bytes.Repeat([]byte{0xab}, 16)
	for i := 0; i < frames; i++ {
		if err := WriteFrame(&stream, &Frame{Type: FramePing, StreamID: uint64(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	cr := &countingReader{r: bytes.NewReader(stream.Bytes())}
	r := NewReader(cr)
	for i := 0; i < frames; i++ {
		if _, err := r.ReadFrame(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if cr.reads > 5 {
		t.Errorf("%d frames took %d reads; read-ahead should coalesce them into a few window fills", frames, cr.reads)
	}
}

func TestReaderReleasesOversizedScratch(t *testing.T) {
	big := bytes.Repeat([]byte{0x5c}, maxRetainedScratch+4096)
	var stream bytes.Buffer
	if err := WriteFrame(&stream, &Frame{Type: FrameRequest, StreamID: 1, Payload: big}); err != nil {
		t.Fatal(err)
	}
	small := []byte("small")
	if err := WriteFrame(&stream, &Frame{Type: FrameRequest, StreamID: 2, Payload: small}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&stream)
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, big) {
		t.Fatal("oversized payload mismatch")
	}
	if cap(r.scratch) <= maxRetainedScratch {
		t.Fatalf("test setup: expected oversized scratch, cap=%d", cap(r.scratch))
	}
	f, err = r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, small) {
		t.Fatal("small payload mismatch")
	}
	if cap(r.scratch) > maxRetainedScratch {
		t.Errorf("reader retained %d-byte scratch after an oversized frame; want <= %d", cap(r.scratch), maxRetainedScratch)
	}
}

func TestWriterReleasesOversizedBatchBuffer(t *testing.T) {
	w := NewWriter(io.Discard)
	big := make([]byte, maxRetainedWriteBuf+4096)
	if err := w.WriteFrame(&Frame{Type: FrameRequest, StreamID: 1, Payload: big}); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) > maxRetainedWriteBuf {
		t.Errorf("writer retained %d-byte batch buffer; want <= %d", cap(w.buf), maxRetainedWriteBuf)
	}
}

func TestBufPoolCapacityContract(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 1 << 20, 1<<20 + 1, 3 << 20} {
		b := GetBuf(n)
		if len(b) != 0 {
			t.Fatalf("GetBuf(%d): len=%d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuf(%d): cap=%d, want >= %d", n, cap(b), n)
		}
		b = append(b, make([]byte, n)...)
		PutBuf(b)
	}
	// A recycled buffer must still satisfy the class it is handed out from.
	b := GetBuf(1000)
	PutBuf(b)
	b2 := GetBuf(1024)
	if cap(b2) < 1024 {
		t.Fatalf("recycled buffer: cap=%d, want >= 1024", cap(b2))
	}
	PutBuf(nil) // no-op
}
