package wire

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"rpcscale/internal/sanitize"
)

// Each size class keeps a mutex-guarded stack of free buffers in a fixed
// array. A sync.Pool would hand out per-P caches, but Put must box the
// slice header into an interface — one heap allocation per recycle —
// which defeats the point of pooling on the hot path. The fixed array
// stores slice headers directly, so Get and Put are allocation-free.
const poolDepth = 64

// maxRetainedPerClass caps the bytes a class may pin (4 MiB), so the
// large classes keep proportionally fewer buffers than poolDepth allows.
const maxRetainedPerClass = 4 << 20

type bufClass struct {
	mu   sync.Mutex
	n    int // free[:n] are available
	free [poolDepth][]byte
}

// lock and unlock wrap mu with the sanitize rank checker: the pool
// mutex is a leaf (rank RankBufPool) — nothing may be acquired under it.
func (p *bufClass) lock() {
	p.mu.Lock()
	if sanitize.Enabled {
		sanitize.LockAcquired(sanitize.RankBufPool, "wire.bufPools")
	}
}

func (p *bufClass) unlock() {
	if sanitize.Enabled {
		sanitize.LockReleased(sanitize.RankBufPool)
	}
	p.mu.Unlock()
}

// depth returns the whole-class retention limit for class cls.
func depth(cls int) int {
	d := maxRetainedPerClass >> (cls + minPoolClass)
	if d > poolDepth {
		return poolDepth
	}
	if d < 4 {
		return 4
	}
	return d
}

// shardDepth splits the class retention limit across shards (rounding up,
// minimum one buffer per shard). For small classes the 4 MiB cap is
// preserved exactly; the largest classes may retain up to one buffer per
// shard beyond it — bounded, and only when multi-core traffic actually
// populates every shard.
func shardDepth(cls int) int {
	d := (depth(cls) + poolShardCount - 1) / poolShardCount
	if d < 1 {
		return 1
	}
	return d
}

// Size-classed buffer pool for the data plane. The send path threads
// these buffers through marshal→compress→seal and the recv path through
// open→decompress, so steady-state traffic recycles a small working set
// instead of allocating per message.
//
// Ownership contract: GetBuf transfers ownership to the caller; whoever
// holds the buffer last returns it with PutBuf once no live slice aliases
// it. Returning a buffer is best-effort — a buffer that goes out of scope
// without PutBuf is simply collected by the GC, so error paths may drop
// buffers but must never return one that is still referenced.

const (
	minPoolClass = 9  // smallest pooled capacity: 512 B
	maxPoolClass = 20 // largest pooled capacity: 1 MiB
)

// maxPoolShards bounds the per-class shard fan-out. Each size class is
// split into poolShardCount independently locked shards so parallel codec
// workers and connection stripes do not serialize on one mutex per class;
// a shard is picked round-robin from the operation counters (no extra
// atomics on the hot path). With GOMAXPROCS=1 — and always under the
// sanitize tag, whose poison tests rely on deterministic LIFO reuse —
// there is a single shard and behavior is identical to the unsharded
// pool.
const maxPoolShards = 8

var (
	poolShardCount = 1
	poolShardMask  int64
)

func init() {
	if sanitize.Enabled {
		return
	}
	s := 1
	for s < runtime.GOMAXPROCS(0) && s < maxPoolShards {
		s <<= 1
	}
	poolShardCount = s
	poolShardMask = int64(s - 1)
}

var bufPools [maxPoolClass - minPoolClass + 1][maxPoolShards]bufClass

// poolGets and poolPuts count GetBuf and PutBuf calls (including the
// out-of-class fallbacks). Their difference bounds the buffers currently
// owned by callers; leak tests assert it stays flat across iterations.
var poolGets, poolPuts atomic.Int64

// PoolCounters reports the cumulative GetBuf and PutBuf call counts.
// gets-puts is the number of outstanding buffers: it may be non-zero at
// any instant (buffers legitimately in flight, or dropped to the GC on
// error paths), but must not grow without bound in steady state.
func PoolCounters() (gets, puts int64) {
	return poolGets.Load(), poolPuts.Load()
}

// GetBuf returns a buffer with len 0 and cap >= n for the caller to
// append into. Requests beyond the largest size class are plain
// allocations that PutBuf will decline to pool.
func GetBuf(n int) []byte {
	g := poolGets.Add(1)
	if n > 1<<maxPoolClass {
		return make([]byte, 0, n)
	}
	cls := 0
	if n > 1<<minPoolClass {
		cls = bits.Len(uint(n-1)) - minPoolClass // ceil(log2 n) - min
	}
	p := &bufPools[cls][g&poolShardMask]
	p.lock()
	if p.n > 0 {
		p.n--
		b := p.free[p.n]
		p.free[p.n] = nil
		p.unlock()
		poisonGet(b)
		return b
	}
	p.unlock()
	return make([]byte, 0, 1<<(cls+minPoolClass))
}

// PutBuf recycles a buffer obtained from GetBuf (nil is a no-op). The
// caller must not touch b afterwards. Buffers are filed under the largest
// class their capacity covers, so a pooled buffer always satisfies the
// capacity promise of the class it is handed out from.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	g := poolPuts.Add(1)
	c := cap(b)
	if c < 1<<minPoolClass || c > 1<<maxPoolClass {
		return
	}
	cls := bits.Len(uint(c)) - 1 - minPoolClass // floor(log2 cap) - min
	poisonCheckPut(b)
	p := &bufPools[cls][g&poolShardMask]
	p.lock()
	if p.n < shardDepth(cls) {
		poisonRetain(b)
		p.free[p.n] = b[:0]
		p.n++
	}
	p.unlock()
}
