package wire

import (
	"math/bits"
	"sync"
)

// Size-classed buffer pool for the data plane. The send path threads
// these buffers through marshal→compress→seal and the recv path through
// open→decompress, so steady-state traffic recycles a small working set
// instead of allocating per message.
//
// Ownership contract: GetBuf transfers ownership to the caller; whoever
// holds the buffer last returns it with PutBuf once no live slice aliases
// it. Returning a buffer is best-effort — a buffer that goes out of scope
// without PutBuf is simply collected by the GC, so error paths may drop
// buffers but must never return one that is still referenced.

const (
	minPoolClass = 9  // smallest pooled capacity: 512 B
	maxPoolClass = 20 // largest pooled capacity: 1 MiB
)

var bufPools [maxPoolClass - minPoolClass + 1]sync.Pool

// GetBuf returns a buffer with len 0 and cap >= n for the caller to
// append into. Requests beyond the largest size class are plain
// allocations that PutBuf will decline to pool.
func GetBuf(n int) []byte {
	if n > 1<<maxPoolClass {
		return make([]byte, 0, n)
	}
	cls := 0
	if n > 1<<minPoolClass {
		cls = bits.Len(uint(n-1)) - minPoolClass // ceil(log2 n) - min
	}
	if v := bufPools[cls].Get(); v != nil {
		return (*v.(*[]byte))[:0]
	}
	return make([]byte, 0, 1<<(cls+minPoolClass))
}

// PutBuf recycles a buffer obtained from GetBuf (nil is a no-op). The
// caller must not touch b afterwards. Buffers are filed under the largest
// class their capacity covers, so a pooled buffer always satisfies the
// capacity promise of the class it is handed out from.
func PutBuf(b []byte) {
	c := cap(b)
	if c < 1<<minPoolClass || c > 1<<maxPoolClass {
		return
	}
	cls := bits.Len(uint(c)) - 1 - minPoolClass // floor(log2 cap) - min
	b = b[:0]
	bufPools[cls].Put(&b)
}
