//go:build !sanitize

package wire

// Pool poisoning hooks; no-ops unless built with -tags sanitize.
// See poison_on.go for what each hook asserts.

func poisonCheckPut(b []byte) {}
func poisonRetain(b []byte)   {}
func poisonGet(b []byte)      {}
