//go:build sanitize

package wire

import (
	"fmt"
	"sync"
)

// Under the sanitize tag the pool poisons every buffer it retains:
// PutBuf fills the full capacity with poisonByte and records the
// backing array; GetBuf verifies the pattern is intact before handing
// the buffer out. A caller that writes through a stale alias after
// PutBuf — the §11 ownership bug class — corrupts the poison and turns
// a silent cross-request data leak into an immediate panic at the next
// Get, and a double PutBuf panics at the second Put instead of handing
// one buffer to two owners. Only buffers actually sitting in the free
// lists are tracked (they are strongly referenced, so their addresses
// are stable); buffers the pool declines are dropped untracked to the
// GC, avoiding false positives when an address is reused.

const poisonByte = 0xDB

var (
	poisonMu sync.Mutex
	poisoned = make(map[*byte]bool) // backing array of each free-list buffer
)

// poisonKey identifies a buffer by the address of its first backing
// byte; pooled buffers always have non-zero capacity.
func poisonKey(b []byte) *byte { return &b[:1][0] }

// poisonCheckPut panics if b is already sitting in a free list: a
// second PutBuf would queue the same buffer twice and hand it to two
// different callers.
func poisonCheckPut(b []byte) {
	poisonMu.Lock()
	dup := poisoned[poisonKey(b)]
	poisonMu.Unlock()
	if dup {
		panic("wire: PutBuf called twice on the same buffer; it is already in the pool")
	}
}

// poisonRetain fills b's full capacity with the poison pattern and
// tracks it. Called with the buffer's class lock held, just before it
// is filed into the free list.
func poisonRetain(b []byte) {
	p := b[:cap(b)]
	for i := range p {
		p[i] = poisonByte
	}
	poisonMu.Lock()
	poisoned[poisonKey(b)] = true
	poisonMu.Unlock()
}

// poisonGet untracks b and verifies the poison laid down by
// poisonRetain survived its stay in the pool.
func poisonGet(b []byte) {
	poisonMu.Lock()
	delete(poisoned, poisonKey(b))
	poisonMu.Unlock()
	p := b[:cap(b)]
	for i, c := range p {
		if c != poisonByte {
			panic(fmt.Sprintf(
				"wire: pooled buffer written after PutBuf (byte %d of %d is %#02x, want %#02x); a caller kept a live alias into the pool",
				i, len(p), c, poisonByte))
		}
	}
}
