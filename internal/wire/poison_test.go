//go:build sanitize

package wire

import (
	"strings"
	"testing"
)

// mustPanic runs f and returns the recovered panic message, failing the
// test if f returns normally.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
		t.Fatal("expected panic, got none")
	}()
	return msg
}

// TestPoisonCatchesUseAfterPut seeds the §11 ownership bug the bufown
// analyzer hunts statically: a caller keeps an alias into a buffer it
// already returned and writes through it. The poisoned pool must turn
// that silent cross-request corruption into a panic at the next Get.
func TestPoisonCatchesUseAfterPut(t *testing.T) {
	b := GetBuf(600)
	b = append(b, make([]byte, 600)...)
	PutBuf(b)
	b[17] = 0x42 // stale-alias write after the pool took the buffer back

	msg := mustPanic(t, func() {
		// The class free list is LIFO, so this Get returns the buffer
		// just recycled and must find its poison corrupted.
		GetBuf(600)
	})
	if !strings.Contains(msg, "written after PutBuf") {
		t.Fatalf("panic message = %q, want use-after-Put report", msg)
	}
}

// TestPoisonCatchesDoublePut returns one buffer twice; the second Put
// must panic instead of queueing the buffer for two future owners.
func TestPoisonCatchesDoublePut(t *testing.T) {
	b := GetBuf(600)
	PutBuf(b)
	defer func() {
		// Leave the pool consistent for later tests: the buffer is
		// still (legitimately) in the free list once.
		_ = GetBuf(600)
	}()
	msg := mustPanic(t, func() { PutBuf(b) })
	if !strings.Contains(msg, "twice") {
		t.Fatalf("panic message = %q, want double-Put report", msg)
	}
}
