package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []*Frame{
		{Type: FrameRequest, StreamID: 1, Payload: []byte("hello")},
		{Type: FrameResponse, StreamID: 1, Payload: []byte("world")},
		{Type: FrameCancel, StreamID: 99, Payload: nil},
		{Type: FramePing, StreamID: 0, Payload: []byte{0}},
		{Type: FrameGoAway, StreamID: 1 << 62, Payload: bytes.Repeat([]byte{0xAB}, 10000)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.StreamID != want.StreamID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: got %+v", i, got)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(streamID uint64, payload []byte, typeSel uint8) bool {
		ft := byte(typeSel%6) + FrameRequest
		var buf bytes.Buffer
		in := &Frame{Type: ft, StreamID: streamID, Payload: payload}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := NewReader(&buf).ReadFrame()
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.StreamID == in.StreamID &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	f := &Frame{Type: FrameResponse, StreamID: 7, Payload: []byte("abc")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	appended := AppendFrame(nil, f)
	if !bytes.Equal(buf.Bytes(), appended) {
		t.Fatalf("WriteFrame %x != AppendFrame %x", buf.Bytes(), appended)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: FrameRequest, StreamID: 3, Payload: []byte("truncate me")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		_, err := r.ReadFrame()
		if err == nil {
			t.Fatalf("cut=%d: expected error", cut)
		}
		if err == io.EOF {
			t.Fatalf("cut=%d: mid-frame truncation must not be clean EOF", cut)
		}
	}
}

func TestBadFrameType(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0xFF, 0x01, 0x00}))
	_, err := r.ReadFrame()
	if !errors.Is(err, ErrBadFrameType) {
		t.Fatalf("got %v, want ErrBadFrameType", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	// Craft a header declaring a payload beyond MaxFrameSize without
	// actually allocating it.
	hdr := []byte{FrameRequest}
	hdr = AppendUvarint(hdr, 1)
	hdr = AppendUvarint(hdr, MaxFrameSize+1)
	r := NewReader(bytes.NewReader(hdr))
	_, err := r.ReadFrame()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}

	// Writing an oversize frame is also rejected up front.
	w := &Frame{Type: FrameRequest, Payload: make([]byte, 1)}
	w.Payload = w.Payload[:0]
	if err := WriteFrame(io.Discard, &Frame{Type: FrameRequest, Payload: make([]byte, 0)}); err != nil {
		t.Fatalf("empty frame: %v", err)
	}
}

func TestReaderPayloadReuse(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &Frame{Type: FrameRequest, StreamID: 1, Payload: []byte("first")})
	_ = WriteFrame(&buf, &Frame{Type: FrameRequest, StreamID: 2, Payload: []byte("secnd")})
	r := NewReader(&buf)
	f1, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	copied := append([]byte(nil), f1.Payload...)
	if _, err := r.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(copied, []byte("first")) {
		t.Fatal("copied payload corrupted")
	}
}

func TestVarintHelpers(t *testing.T) {
	for _, x := range []uint64{0, 1, 127, 128, 1 << 20, 1<<63 - 1} {
		buf := AppendUvarint(nil, x)
		if got := SizeUvarint(x); got != len(buf) {
			t.Errorf("SizeUvarint(%d) = %d, want %d", x, got, len(buf))
		}
		back, n := Uvarint(buf)
		if back != x || n != len(buf) {
			t.Errorf("Uvarint round trip failed for %d", x)
		}
	}
	for _, x := range []int64{0, -1, 1, -1 << 40, 1 << 40} {
		buf := AppendVarint(nil, x)
		back, n := Varint(buf)
		if back != x || n != len(buf) {
			t.Errorf("Varint round trip failed for %d", x)
		}
	}
}

func TestReadFrameFromChunkedReader(t *testing.T) {
	// A reader that returns one byte at a time exercises partial reads.
	var buf bytes.Buffer
	want := &Frame{Type: FrameResponse, StreamID: 42, Payload: []byte("chunked payload")}
	_ = WriteFrame(&buf, want)
	r := NewReader(iotest{r: &buf})
	got, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, want.Payload) || got.StreamID != 42 {
		t.Fatalf("got %+v", got)
	}
}

type iotest struct{ r io.Reader }

func (i iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return i.r.Read(p)
}
