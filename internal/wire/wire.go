// Package wire implements the low-level wire format of the Stubby-like RPC
// stack: varint primitives and length-prefixed frame framing over a byte
// stream. It is the layer the paper's "RPC Processing and Network Stack"
// component spends its serialization cycles in, and the cycle-accounting
// hooks in codec and stubby charge their work against it.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame type tags carried in the frame header. The RPC stack multiplexes
// requests, responses, cancellations, and health pings over one connection.
const (
	FrameRequest  = 0x01
	FrameResponse = 0x02
	FrameCancel   = 0x03
	FramePing     = 0x04
	FramePong     = 0x05
	FrameGoAway   = 0x06
)

// MaxFrameSize bounds a single frame. The paper's P99 response is 563 KB
// with a heavy tail beyond; 64 MB comfortably covers the tail while still
// rejecting corrupt length prefixes.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned when a frame header declares a payload
// larger than MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrBadFrameType is returned for an unknown frame type tag.
var ErrBadFrameType = errors.New("wire: unknown frame type")

// Frame is one unit of transmission: a type tag, a stream (call) ID used to
// multiplex concurrent RPCs over a connection, and an opaque payload.
type Frame struct {
	Type     byte
	StreamID uint64
	Payload  []byte
}

// frame header layout: 1 byte type | uvarint stream id | uvarint length.
const maxHeaderSize = 1 + binary.MaxVarintLen64 + binary.MaxVarintLen64

// AppendFrame serializes f onto buf and returns the extended slice.
func AppendFrame(buf []byte, f *Frame) []byte {
	buf = append(buf, f.Type)
	buf = binary.AppendUvarint(buf, f.StreamID)
	buf = binary.AppendUvarint(buf, uint64(len(f.Payload)))
	return append(buf, f.Payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 0, maxHeaderSize)
	hdr = append(hdr, f.Type)
	hdr = binary.AppendUvarint(hdr, f.StreamID)
	hdr = binary.AppendUvarint(hdr, uint64(len(f.Payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// Reader decodes frames from a byte stream.
type Reader struct {
	r   io.Reader
	br  byteReader
	buf []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, br: byteReader{r: r}}
}

// ReadFrame reads the next frame. The returned payload is only valid until
// the next call; callers that retain it must copy. io.EOF is returned
// cleanly at a frame boundary, io.ErrUnexpectedEOF mid-frame.
func (fr *Reader) ReadFrame() (*Frame, error) {
	t, err := fr.br.ReadByte()
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF // EOF before any byte of a new frame is clean
		}
		return nil, err
	}
	if t < FrameRequest || t > FrameGoAway {
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadFrameType, t)
	}
	stream, err := binary.ReadUvarint(&fr.br)
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	length, err := binary.ReadUvarint(&fr.br)
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if length > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, unexpectedEOF(err)
	}
	return &Frame{Type: t, StreamID: stream, Payload: payload}, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// byteReader adapts an io.Reader to io.ByteReader without buffering ahead
// (framing must not read past the current frame).
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	n, err := io.ReadFull(b.r, b.one[:])
	if n == 1 {
		return b.one[0], nil
	}
	return 0, unexpectedEOF(err)
}

// AppendUvarint appends x to buf as an unsigned varint.
func AppendUvarint(buf []byte, x uint64) []byte { return binary.AppendUvarint(buf, x) }

// Uvarint decodes an unsigned varint from buf, returning the value and the
// number of bytes consumed (0 if buf is truncated).
func Uvarint(buf []byte) (uint64, int) { return binary.Uvarint(buf) }

// AppendVarint appends x using zig-zag encoding.
func AppendVarint(buf []byte, x int64) []byte { return binary.AppendVarint(buf, x) }

// Varint decodes a zig-zag varint.
func Varint(buf []byte) (int64, int) { return binary.Varint(buf) }

// SizeUvarint returns the encoded size of x in bytes.
func SizeUvarint(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
