// Package wire implements the low-level wire format of the Stubby-like RPC
// stack: varint primitives and length-prefixed frame framing over a byte
// stream. It is the layer the paper's "RPC Processing and Network Stack"
// component spends its serialization cycles in, and the cycle-accounting
// hooks in codec and stubby charge their work against it.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Frame type tags carried in the frame header. The RPC stack multiplexes
// requests, responses, cancellations, and health pings over one
// connection; the bulk lane adds stream-open, chunk, and flow-control
// frames so many concurrent streams share the connection without
// head-of-line blocking at the framing layer.
const (
	FrameRequest  = 0x01
	FrameResponse = 0x02
	FrameCancel   = 0x03
	FramePing     = 0x04
	FramePong     = 0x05
	FrameGoAway   = 0x06

	// Bulk-lane frames (see DESIGN.md §12).

	// FrameStreamOpen opens a bidirectional stream; the payload is a
	// sealed request envelope carrying the method and the initial
	// per-direction credit window.
	FrameStreamOpen = 0x07
	// FrameStreamChunk carries one chunk of stream or bulk payload. The
	// first payload byte is a clear-text flags byte (authenticated as
	// AAD); the rest is the sealed chunk data.
	FrameStreamChunk = 0x08
	// FrameWindowUpdate grants the peer additional send credit on one
	// stream: the payload is a sealed uvarint byte delta (the HTTP/2
	// WINDOW_UPDATE equivalent).
	FrameWindowUpdate = 0x09
	// FrameReset aborts one stream in both directions: the payload is a
	// sealed uvarint error code. Unlike FrameCancel it tears down stream
	// state (credit waiters, assembly buffers) promptly on both ends.
	FrameReset = 0x0A
	// FrameBulkRequest / FrameBulkResponse are unary envelopes whose
	// payload travels separately in FrameStreamChunk frames on the same
	// stream ID — the transparent bulk routing of large unary calls.
	FrameBulkRequest  = 0x0B
	FrameBulkResponse = 0x0C
)

// maxFrameType is the highest assigned frame type tag.
const maxFrameType = FrameBulkResponse

// MaxFrameSize bounds a single frame. The paper's P99 response is 563 KB
// with a heavy tail beyond; 64 MB comfortably covers the tail while still
// rejecting corrupt length prefixes.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned when a frame header declares a payload
// larger than MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrBadFrameType is returned for an unknown frame type tag.
var ErrBadFrameType = errors.New("wire: unknown frame type")

var errVarintOverflow = errors.New("wire: varint overflows 64 bits")

// Frame is one unit of transmission: a type tag, a stream (call) ID used to
// multiplex concurrent RPCs over a connection, and an opaque payload.
type Frame struct {
	Type     byte
	StreamID uint64
	Payload  []byte
}

// frame header layout: 1 byte type | uvarint stream id | uvarint length.
const maxHeaderSize = 1 + binary.MaxVarintLen64 + binary.MaxVarintLen64

// AppendFrame serializes f onto buf and returns the extended slice.
func AppendFrame(buf []byte, f *Frame) []byte {
	buf = append(buf, f.Type)
	buf = binary.AppendUvarint(buf, f.StreamID)
	buf = binary.AppendUvarint(buf, uint64(len(f.Payload)))
	return append(buf, f.Payload...)
}

// WriteFrame writes one frame to w as two writes (header, payload). The
// data plane uses Writer instead, which coalesces header and payload —
// and batches of frames — into single writes; WriteFrame remains for
// one-shot and test use.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 0, maxHeaderSize)
	hdr = append(hdr, f.Type)
	hdr = binary.AppendUvarint(hdr, f.StreamID)
	hdr = binary.AppendUvarint(hdr, uint64(len(f.Payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// readBufSize is the Reader's read-ahead window. 128 KB covers the vast
// majority of frames (the fleet's P99 request is ~18 KB, Fig. 6) so a
// steady stream of small frames costs one read syscall per window, not
// one per header byte — and a pipelined run of bulk-lane chunks (64 KB
// ciphertext each, DESIGN.md §12) drains at one or two chunks per
// syscall instead of paying a read per chunk.
const readBufSize = 128 << 10

// maxRetainedScratch clamps the payload scratch buffer a Reader keeps
// between frames. One oversized frame must not pin its buffer for the
// connection's lifetime; anything above the clamp is released after use.
const maxRetainedScratch = 1 << 20

// Reader decodes frames from a byte stream. It buffers ahead of the
// current frame — safe because the transport's reader goroutine owns the
// connection — so headers are decoded from memory instead of issuing
// 1-byte read syscalls.
//
// ReadFrame returns a *Frame that is only valid until the next call: the
// Reader reuses both the Frame struct and the payload storage.
type Reader struct {
	r   io.Reader
	buf []byte // read-ahead window; buf[pos:end] holds unread bytes
	pos int
	end int

	scratch []byte // payload assembly for frames larger than the window
	frame   Frame  // reused result
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, readBufSize)}
}

// fill refills the (empty) read-ahead window with one read.
func (fr *Reader) fill() error {
	fr.pos, fr.end = 0, 0
	for {
		n, err := fr.r.Read(fr.buf)
		if n > 0 {
			fr.end = n
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// readByte returns the next byte. atBoundary marks the first byte of a
// frame, where EOF is clean; everywhere else it is io.ErrUnexpectedEOF.
func (fr *Reader) readByte(atBoundary bool) (byte, error) {
	if fr.pos == fr.end {
		if err := fr.fill(); err != nil {
			if err == io.EOF && atBoundary {
				return 0, io.EOF
			}
			return 0, unexpectedEOF(err)
		}
	}
	b := fr.buf[fr.pos]
	fr.pos++
	return b, nil
}

// readUvarint decodes a uvarint from the buffered stream.
func (fr *Reader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := fr.readByte(false)
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errVarintOverflow
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, errVarintOverflow
}

// ReadFrame reads the next frame. The returned frame and its payload are
// only valid until the next call; callers that retain either must copy.
// io.EOF is returned cleanly at a frame boundary, io.ErrUnexpectedEOF
// mid-frame.
func (fr *Reader) ReadFrame() (*Frame, error) {
	if cap(fr.scratch) > maxRetainedScratch {
		fr.scratch = nil // release the oversized-frame buffer
	}
	t, err := fr.readByte(true)
	if err != nil {
		return nil, err
	}
	if t < FrameRequest || t > maxFrameType {
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadFrameType, t)
	}
	stream, err := fr.readUvarint()
	if err != nil {
		return nil, err
	}
	length, err := fr.readUvarint()
	if err != nil {
		return nil, err
	}
	if length > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	n := int(length)
	avail := fr.end - fr.pos
	var payload []byte
	if avail >= n {
		// Whole payload already buffered: return it in place, no copy.
		payload = fr.buf[fr.pos : fr.pos+n]
		fr.pos += n
	} else {
		if cap(fr.scratch) < n {
			fr.scratch = make([]byte, n)
		}
		payload = fr.scratch[:n]
		copy(payload, fr.buf[fr.pos:fr.end])
		fr.pos = fr.end
		if _, err := io.ReadFull(fr.r, payload[avail:]); err != nil {
			return nil, unexpectedEOF(err)
		}
	}
	fr.frame = Frame{Type: t, StreamID: stream, Payload: payload}
	return &fr.frame, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// maxRetainedWriteBuf clamps the batch buffer a Writer keeps across
// flushes, mirroring the Reader's scratch clamp.
const maxRetainedWriteBuf = 1 << 20

// Writer accumulates frames into one buffer and flushes them with a
// single Write: a frame costs one syscall instead of two (header +
// payload), and a batch of frames costs one syscall total. Not safe for
// concurrent use; the transport serializes access under its send lock.
//
// Frames whose payload already lives in its own buffer (sealed chunks
// from the bulk lane) can be queued by reference with AppendFrameVec:
// only the header lands in the batch buffer and Flush hands the kernel a
// scatter-gather list (net.Buffers → writev on TCP), so large payloads
// reach the wire without a coalescing copy.
type Writer struct {
	w   io.Writer
	buf []byte
	// want is the expected buffer length after an open BeginFrame/EndFrame
	// pair, used to verify the caller appended exactly the declared bytes.
	want int

	// segs holds by-reference payload segments queued by AppendFrameVec;
	// seg[i].pos is the batch-buffer offset the segment is spliced after.
	segs []vecSeg
	// vec is the reusable scatter-gather list handed to net.Buffers.
	vec net.Buffers
	// onFlush, when non-nil, runs after every Flush that wrote queued
	// segments, before the segment list is cleared. The transport uses it
	// to return pooled chunk buffers once the kernel has consumed them.
	onFlush func(segs [][]byte)
	// flushSegs is the reusable slice passed to onFlush.
	flushSegs [][]byte
}

// vecSeg records one by-reference payload: the batch-buffer length at the
// time it was queued (the splice point) and the payload itself.
type vecSeg struct {
	pos     int
	payload []byte
}

// NewWriter returns a batching frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 4096)}
}

// AppendFrame serializes f into the batch buffer without flushing.
func (fw *Writer) AppendFrame(f *Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	fw.buf = AppendFrame(fw.buf, f)
	return nil
}

// BeginFrame appends a header for a frame whose payload is exactly
// payloadLen bytes and returns the batch buffer for the caller to append
// the payload onto — e.g. sealing ciphertext directly into place with no
// intermediate copy. The caller must append exactly payloadLen bytes and
// hand the extended slice back to EndFrame before any other Writer call.
func (fw *Writer) BeginFrame(frameType byte, streamID uint64, payloadLen int) ([]byte, error) {
	if payloadLen > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	fw.buf = append(fw.buf, frameType)
	fw.buf = binary.AppendUvarint(fw.buf, streamID)
	fw.buf = binary.AppendUvarint(fw.buf, uint64(payloadLen))
	fw.want = len(fw.buf) + payloadLen
	return fw.buf, nil
}

// EndFrame completes a BeginFrame with the slice the payload was appended
// onto (append may have moved it).
func (fw *Writer) EndFrame(buf []byte) error {
	if len(buf) != fw.want {
		return fmt.Errorf("wire: frame payload size mismatch: appended to %d bytes, declared %d", len(buf), fw.want)
	}
	fw.buf = buf
	return nil
}

// AppendFrameVec queues a frame whose payload is written by reference:
// the header goes into the batch buffer, the payload slice is recorded
// for Flush's scatter-gather write. The caller must keep payload
// unmodified until Flush returns (or until onFlush hands it back).
func (fw *Writer) AppendFrameVec(frameType byte, streamID uint64, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	fw.buf = append(fw.buf, frameType)
	fw.buf = binary.AppendUvarint(fw.buf, streamID)
	fw.buf = binary.AppendUvarint(fw.buf, uint64(len(payload)))
	fw.segs = append(fw.segs, vecSeg{pos: len(fw.buf), payload: payload})
	return nil
}

// SetFlushHook installs fn to run after each Flush that wrote
// by-reference segments, receiving the segment payloads in queue order.
// The transport uses it to recycle pooled chunk buffers once written.
func (fw *Writer) SetFlushHook(fn func(segs [][]byte)) { fw.onFlush = fn }

// Buffered returns the number of bytes waiting to be flushed, including
// by-reference segments.
func (fw *Writer) Buffered() int {
	n := len(fw.buf)
	for _, s := range fw.segs {
		n += len(s.payload)
	}
	return n
}

// Flush writes every buffered frame. With no by-reference segments this
// is a single Write; with segments it builds a scatter-gather list
// interleaving batch-buffer regions and segment payloads and hands it to
// net.Buffers.WriteTo — writev on TCP connections, so segment bytes go
// to the kernel straight from their own buffers.
func (fw *Writer) Flush() error {
	if len(fw.buf) == 0 && len(fw.segs) == 0 {
		return nil
	}
	var err error
	if len(fw.segs) == 0 {
		_, err = fw.w.Write(fw.buf)
	} else {
		vec := fw.vec[:0]
		prev := 0
		for _, s := range fw.segs {
			if s.pos > prev {
				vec = append(vec, fw.buf[prev:s.pos])
			}
			prev = s.pos
			if len(s.payload) > 0 {
				vec = append(vec, s.payload)
			}
		}
		if prev < len(fw.buf) {
			vec = append(vec, fw.buf[prev:])
		}
		// WriteTo takes a pointer receiver and consumes the header it is
		// given; calling it on the (heap-resident) field instead of the
		// local keeps the slice header from escaping per flush. The local
		// still holds the full header over the same backing array, so the
		// cleanup below restores and clears it.
		fw.vec = vec
		_, err = fw.vec.WriteTo(fw.w)
		fw.vec = vec
		for i := range fw.vec {
			fw.vec[i] = nil
		}
		fw.vec = fw.vec[:0]
		if fw.onFlush != nil {
			out := fw.flushSegs[:0]
			for _, s := range fw.segs {
				out = append(out, s.payload)
			}
			fw.onFlush(out)
			fw.flushSegs = out[:0]
		}
		for i := range fw.segs {
			fw.segs[i] = vecSeg{}
		}
		fw.segs = fw.segs[:0]
	}
	if cap(fw.buf) > maxRetainedWriteBuf {
		fw.buf = make([]byte, 0, 4096)
	} else {
		fw.buf = fw.buf[:0]
	}
	return err
}

// WriteFrame appends one frame and flushes it: header and payload leave
// in one write.
func (fw *Writer) WriteFrame(f *Frame) error {
	if err := fw.AppendFrame(f); err != nil {
		return err
	}
	return fw.Flush()
}

// AppendUvarint appends x to buf as an unsigned varint.
func AppendUvarint(buf []byte, x uint64) []byte { return binary.AppendUvarint(buf, x) }

// Uvarint decodes an unsigned varint from buf, returning the value and the
// number of bytes consumed (0 if buf is truncated).
func Uvarint(buf []byte) (uint64, int) { return binary.Uvarint(buf) }

// AppendVarint appends x using zig-zag encoding.
func AppendVarint(buf []byte, x int64) []byte { return binary.AppendVarint(buf, x) }

// Varint decodes a zig-zag varint.
func Varint(buf []byte) (int64, int) { return binary.Varint(buf) }

// SizeUvarint returns the encoded size of x in bytes.
func SizeUvarint(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
