// Package loadbalance implements RPC load-balancing policies and the
// machine-level experiment behind the paper's §4.3: the distribution of
// CPU usage across clusters (imbalanced, because inter-cluster routing
// optimizes network latency rather than load) and across machines within
// a cluster (tight, except for data-dependent services whose hot shards
// pin work to specific machines).
package loadbalance

import (
	"time"

	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
)

// Config sizes one load-balancing experiment (one service).
type Config struct {
	Clusters           int
	MachinesPerCluster int
	// Capacity is per-machine concurrency (worker threads).
	Capacity int
	// MeanService and ServiceSigma define the lognormal service-time
	// demand of one request.
	MeanService  time.Duration
	ServiceSigma float64
	// OfferedLoad is the target mean utilization across the fleet, 0..1.
	OfferedLoad float64
	// ClusterImbalance is the lognormal sigma of per-cluster demand
	// weights: 0 = perfectly balanced; ~0.8 reproduces the paper's
	// inter-cluster spread.
	ClusterImbalance float64
	// KeySkew is the fraction of requests pinned to a shard-affine
	// machine (data-dependent routing); the Zipf skew over machines
	// models hot shards. 0 disables affinity.
	KeySkew float64
	// Duration is the simulated time span.
	Duration time.Duration
	// Policy balances the non-pinned requests within a cluster.
	Policy Policy
	Seed   uint64
}

// DefaultConfig gives a moderate storage-like service.
func DefaultConfig() Config {
	return Config{
		Clusters:           12,
		MachinesPerCluster: 12,
		Capacity:           4,
		MeanService:        2 * time.Millisecond,
		ServiceSigma:       0.8,
		OfferedLoad:        0.55,
		ClusterImbalance:   0.8,
		KeySkew:            0,
		Duration:           4 * time.Second,
		Policy:             &RoundRobin{},
		Seed:               1,
	}
}

// Result reports the experiment outcome.
type Result struct {
	Policy string
	// ClusterUsage is each cluster's used/limit CPU ratio (Fig. 22's
	// solid lines).
	ClusterUsage []float64
	// MachineUsage[c] lists the per-machine ratios in cluster c (the
	// dashed lines).
	MachineUsage [][]float64
	// Waits is the queue-wait distribution across all requests.
	Waits *stats.Hist
	// Served counts completed requests.
	Served uint64
}

// MachineSpread returns the max/mean usage ratio within each cluster,
// averaged — 1.0 is perfect balance.
func (r *Result) MachineSpread() float64 {
	if len(r.MachineUsage) == 0 {
		return 0
	}
	var total float64
	for _, machines := range r.MachineUsage {
		var max, sum float64
		for _, u := range machines {
			if u > max {
				max = u
			}
			sum += u
		}
		if sum > 0 {
			total += max / (sum / float64(len(machines)))
		}
	}
	return total / float64(len(r.MachineUsage))
}

// Run executes the experiment on a fresh discrete-event engine.
func Run(cfg Config) Result {
	if cfg.Clusters <= 0 || cfg.MachinesPerCluster <= 0 {
		panic("loadbalance: need at least one cluster and machine")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = &RoundRobin{}
	}
	rng := stats.NewRNG(cfg.Seed).Child("lb")
	engine := sim.NewEngine()

	// Build machines, plus the Endpoint view the policy picks over
	// (policies are transport-agnostic; *sim.Server implements Endpoint).
	machines := make([][]*sim.Server, cfg.Clusters)
	endpoints := make([][]Endpoint, cfg.Clusters)
	for c := range machines {
		machines[c] = make([]*sim.Server, cfg.MachinesPerCluster)
		endpoints[c] = make([]Endpoint, cfg.MachinesPerCluster)
		for m := range machines[c] {
			machines[c][m] = sim.NewServer(engine, "", cfg.Capacity, sim.FIFO)
			endpoints[c][m] = machines[c][m]
		}
	}

	// Per-cluster demand weights: lognormal imbalance, normalized so the
	// fleet-wide offered load matches the target.
	weights := make([]float64, cfg.Clusters)
	var wSum float64
	for c := range weights {
		weights[c] = stats.LogNormal{Mu: 0, Sigma: cfg.ClusterImbalance}.Sample(rng)
		wSum += weights[c]
	}
	// Total service capacity (machine-seconds per second).
	fleetCapacity := float64(cfg.Clusters * cfg.MachinesPerCluster * cfg.Capacity)
	// Service-time distribution with the requested mean.
	sigma := cfg.ServiceSigma
	mu := 0.0
	svcDist := stats.LogNormal{Mu: mu, Sigma: sigma}
	meanFactor := svcDist.Mean()
	targetRate := cfg.OfferedLoad * fleetCapacity / cfg.MeanService.Seconds() // requests/sec fleet-wide

	// Shard affinity tables (hot machines) per cluster.
	shardZipf := stats.NewZipf(cfg.MachinesPerCluster, 1.3, 2)

	waits := stats.NewLatencyHist()
	var served uint64

	// Arrival processes: one Poisson stream per cluster.
	for c := 0; c < cfg.Clusters; c++ {
		c := c
		rate := targetRate * weights[c] / wSum // requests/sec
		if rate <= 0 {
			continue
		}
		interMean := time.Duration(float64(time.Second) / rate)
		cRng := rng.Child(machines[c][0].Name + "arrivals" + string(rune('a'+c)))
		var schedule func()
		schedule = func() {
			gap := time.Duration(cRng.ExpFloat64() * float64(interMean))
			engine.After(gap, func() {
				if engine.Now() > cfg.Duration {
					return
				}
				var target *sim.Server
				if cfg.KeySkew > 0 && cRng.Bool(cfg.KeySkew) {
					target = machines[c][shardZipf.Sample(cRng)]
				} else {
					target = cfg.Policy.Pick(cRng, endpoints[c]).(*sim.Server)
				}
				service := time.Duration(svcDist.Sample(cRng) / meanFactor * float64(cfg.MeanService))
				target.Submit(&sim.Job{
					Service: service,
					Done: func(wait time.Duration) {
						waits.Add(float64(wait))
						served++
					},
				})
				schedule()
			})
		}
		schedule()
	}

	engine.RunUntil(cfg.Duration)
	// Let in-flight work drain for final accounting.
	engine.Run()

	res := Result{
		Policy:       cfg.Policy.Name(),
		ClusterUsage: make([]float64, cfg.Clusters),
		MachineUsage: make([][]float64, cfg.Clusters),
		Waits:        waits,
		Served:       served,
	}
	for c := range machines {
		var sum float64
		res.MachineUsage[c] = make([]float64, cfg.MachinesPerCluster)
		for m, srv := range machines[c] {
			u := srv.Utilization()
			res.MachineUsage[c][m] = u
			sum += u
		}
		res.ClusterUsage[c] = sum / float64(cfg.MachinesPerCluster)
	}
	return res
}
