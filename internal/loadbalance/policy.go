package loadbalance

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rpcscale/internal/stats"
)

// Endpoint is one balanceable backend as a policy sees it: anything that
// can report an instantaneous load estimate. The simulator's *sim.Server
// implements it (queue depth + in-flight jobs), and so does a live
// stubby pool (client-side in-flight + the server-piggybacked load
// report), which is what lets one Policy implementation balance both the
// discrete-event experiment and real TCP traffic.
type Endpoint interface {
	// Load is the endpoint's instantaneous load estimate; higher is
	// busier. Implementations must be safe for concurrent use.
	Load() int
}

// Policy selects an endpoint for one request. Implementations must be
// safe for concurrent Pick calls: the cluster harness shares one policy
// across caller goroutines. The rng is owned by the calling goroutine
// and is NOT shared — concurrency safety is the policy's own state only.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick chooses among endpoints; load-aware policies may inspect
	// Load. The slice is non-empty and must not be retained.
	Pick(rng *stats.RNG, eps []Endpoint) Endpoint
}

// RoundRobin cycles through endpoints. Safe for concurrent use.
type RoundRobin struct{ next atomic.Uint64 }

// Name returns "round-robin".
func (*RoundRobin) Name() string { return "round-robin" }

// Pick returns the next endpoint in rotation.
func (p *RoundRobin) Pick(_ *stats.RNG, eps []Endpoint) Endpoint {
	return eps[int((p.next.Add(1)-1)%uint64(len(eps)))]
}

// Random picks uniformly.
type Random struct{}

// Name returns "random".
func (Random) Name() string { return "random" }

// Pick returns a uniformly random endpoint.
func (Random) Pick(rng *stats.RNG, eps []Endpoint) Endpoint {
	return eps[rng.Intn(len(eps))]
}

// PowerOfTwo samples two endpoints and keeps the less loaded — the
// classic low-coordination load-aware policy.
type PowerOfTwo struct{}

// Name returns "power-of-two".
func (PowerOfTwo) Name() string { return "power-of-two" }

// Pick compares two random endpoints by reported load.
func (PowerOfTwo) Pick(rng *stats.RNG, eps []Endpoint) Endpoint {
	a := eps[rng.Intn(len(eps))]
	b := eps[rng.Intn(len(eps))]
	if a.Load() <= b.Load() {
		return a
	}
	return b
}

// LeastLoaded scans all endpoints — an idealized omniscient balancer.
type LeastLoaded struct{}

// Name returns "least-loaded".
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick returns the endpoint with the smallest instantaneous load.
func (LeastLoaded) Pick(_ *stats.RNG, eps []Endpoint) Endpoint {
	best := eps[0]
	bestLoad := best.Load()
	for _, e := range eps[1:] {
		if l := e.Load(); l < bestLoad {
			best, bestLoad = e, l
		}
	}
	return best
}

// WeightedRoundRobin spreads picks proportionally to inverse reported
// load — the paper's weighted-round-robin policy, where the weights come
// from the backends' load reports rather than static capacity.
type WeightedRoundRobin struct{}

// Name returns "weighted-round-robin".
func (WeightedRoundRobin) Name() string { return "weighted-round-robin" }

// Pick samples an endpoint with probability proportional to 1/(1+load).
func (WeightedRoundRobin) Pick(rng *stats.RNG, eps []Endpoint) Endpoint {
	if len(eps) == 1 {
		return eps[0]
	}
	var total float64
	weights := make([]float64, len(eps))
	for i, e := range eps {
		w := 1.0 / float64(1+e.Load())
		weights[i] = w
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return eps[i]
		}
	}
	return eps[len(eps)-1]
}

// Subset restricts a client to a deterministic slice of the backend set
// before balancing within it — Google-style deterministic subsetting,
// which caps per-client connection counts while keeping the aggregate
// assignment balanced: clients in the same "round" see disjoint subsets
// covering every backend.
type Subset struct {
	// ClientID distinguishes clients; clients with different IDs get
	// different (round-wise disjoint) subsets.
	ClientID int
	// Size is the subset size; it is clamped to the endpoint count.
	// Zero selects a default of 1/4 of the backends (minimum 2).
	Size int
	// Inner balances within the subset; nil selects round-robin.
	Inner Policy

	mu     sync.Mutex
	n      int   // endpoint count the cached subset was computed for
	subset []int // cached indices into the endpoint slice
	inner  Policy
}

// Name returns "subset" qualified by the inner policy.
func (s *Subset) Name() string {
	inner := s.Inner
	if inner == nil {
		inner = &RoundRobin{}
	}
	return "subset/" + inner.Name()
}

// Pick balances within the client's deterministic subset.
func (s *Subset) Pick(rng *stats.RNG, eps []Endpoint) Endpoint {
	s.mu.Lock()
	if s.subset == nil || s.n != len(eps) {
		s.n = len(eps)
		s.subset = SubsetIndices(len(eps), s.ClientID, s.size(len(eps)))
		if s.inner == nil {
			if s.Inner != nil {
				s.inner = s.Inner
			} else {
				s.inner = &RoundRobin{}
			}
		}
	}
	subset, inner := s.subset, s.inner
	s.mu.Unlock()

	view := make([]Endpoint, len(subset))
	for i, idx := range subset {
		view[i] = eps[idx]
	}
	return inner.Pick(rng, view)
}

func (s *Subset) size(n int) int {
	size := s.Size
	if size <= 0 {
		size = n / 4
		if size < 2 {
			size = 2
		}
	}
	if size > n {
		size = n
	}
	return size
}

// SubsetIndices computes the deterministic subset of size elements out of
// n backends for one client: clients are grouped into rounds of
// floor(n/size); within a round the backend list is shuffled by the round
// number and partitioned, so the round's clients cover disjoint slices
// and every backend is assigned before any is assigned twice.
func SubsetIndices(n, clientID, size int) []int {
	if size >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if clientID < 0 {
		clientID = -clientID
	}
	subsetsPerRound := n / size
	round := clientID / subsetsPerRound
	subsetID := clientID % subsetsPerRound

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng := stats.NewRNG(uint64(round) + 0x5eed5eed)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := append([]int(nil), perm[subsetID*size:(subsetID+1)*size]...)
	sort.Ints(out)
	return out
}

// Policies returns a fresh instance of every built-in policy, in report
// order: the five the cluster harness's Fig. 13-15 table compares.
func Policies() []Policy {
	return []Policy{
		&RoundRobin{}, Random{}, WeightedRoundRobin{},
		PowerOfTwo{}, LeastLoaded{}, &Subset{},
	}
}

// ByName builds a fresh policy from its report name. Subsetting accepts
// "subset" (round-robin within the subset) and takes the client ID so
// distinct clients land on distinct subsets.
func ByName(name string, clientID int) (Policy, error) {
	switch strings.TrimSpace(name) {
	case "round-robin", "rr":
		return &RoundRobin{}, nil
	case "random":
		return Random{}, nil
	case "weighted-round-robin", "wrr":
		return WeightedRoundRobin{}, nil
	case "power-of-two", "p2c":
		return PowerOfTwo{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "subset", "subset/round-robin":
		return &Subset{ClientID: clientID}, nil
	case "subset/power-of-two":
		return &Subset{ClientID: clientID, Inner: PowerOfTwo{}}, nil
	default:
		return nil, fmt.Errorf("loadbalance: unknown policy %q", name)
	}
}
