package loadbalance

import (
	"math"
	"sort"
	"testing"
	"time"

	"rpcscale/internal/sim"
	"rpcscale/internal/stats"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Clusters = 6
	cfg.MachinesPerCluster = 8
	cfg.Duration = 1 * time.Second
	return cfg
}

func TestRunBasics(t *testing.T) {
	cfg := quickConfig()
	res := Run(cfg)
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	if len(res.ClusterUsage) != cfg.Clusters {
		t.Fatalf("cluster usage entries = %d", len(res.ClusterUsage))
	}
	for c, u := range res.ClusterUsage {
		if u < 0 || u > 1.01 {
			t.Errorf("cluster %d usage %v out of range", c, u)
		}
		if len(res.MachineUsage[c]) != cfg.MachinesPerCluster {
			t.Errorf("cluster %d machine entries = %d", c, len(res.MachineUsage[c]))
		}
	}
	// Fleet-wide mean near the offered load.
	var mean float64
	for _, u := range res.ClusterUsage {
		mean += u
	}
	mean /= float64(len(res.ClusterUsage))
	if math.Abs(mean-cfg.OfferedLoad) > 0.25 {
		t.Errorf("mean usage = %.2f, offered %.2f", mean, cfg.OfferedLoad)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Run(quickConfig()), Run(quickConfig())
	if a.Served != b.Served {
		t.Fatalf("runs differ: %d vs %d served", a.Served, b.Served)
	}
	for c := range a.ClusterUsage {
		if a.ClusterUsage[c] != b.ClusterUsage[c] {
			t.Fatal("cluster usage not deterministic")
		}
	}
}

func TestClusterImbalanceVisible(t *testing.T) {
	// With high imbalance, cluster usages must spread widely; with zero
	// imbalance they must be tight.
	spread := func(imb float64) float64 {
		cfg := quickConfig()
		cfg.ClusterImbalance = imb
		res := Run(cfg)
		us := append([]float64(nil), res.ClusterUsage...)
		sort.Float64s(us)
		return us[len(us)-1] - us[0]
	}
	if tight, wide := spread(0), spread(1.2); wide <= tight {
		t.Errorf("imbalance had no effect: tight=%v wide=%v", tight, wide)
	}
}

func TestKeySkewUnbalancesMachines(t *testing.T) {
	base := quickConfig()
	base.Policy = PowerOfTwo{}
	balanced := Run(base)

	skewed := base
	skewed.KeySkew = 0.7
	skewRes := Run(skewed)

	if skewRes.MachineSpread() <= balanced.MachineSpread() {
		t.Errorf("key skew did not increase machine spread: %.3f vs %.3f",
			skewRes.MachineSpread(), balanced.MachineSpread())
	}
}

func TestLoadAwareBeatsRandomAtHighLoad(t *testing.T) {
	run := func(p Policy) time.Duration {
		cfg := quickConfig()
		cfg.OfferedLoad = 0.85
		cfg.Policy = p
		res := Run(cfg)
		return time.Duration(res.Waits.Percentile(99))
	}
	randomP99 := run(Random{})
	p2cP99 := run(PowerOfTwo{})
	if p2cP99 >= randomP99 {
		t.Errorf("power-of-two P99 %v >= random P99 %v", p2cP99, randomP99)
	}
}

func TestPoliciesOverSimServers(t *testing.T) {
	engine := sim.NewEngine()
	servers := []*sim.Server{
		sim.NewServer(engine, "a", 1, sim.FIFO),
		sim.NewServer(engine, "b", 1, sim.FIFO),
		sim.NewServer(engine, "c", 1, sim.FIFO),
	}
	eps := make([]Endpoint, len(servers))
	for i, s := range servers {
		eps[i] = s
	}
	rng := stats.NewRNG(1)

	rr := &RoundRobin{}
	if rr.Pick(rng, eps) != servers[0] || rr.Pick(rng, eps) != servers[1] ||
		rr.Pick(rng, eps) != servers[2] || rr.Pick(rng, eps) != servers[0] {
		t.Error("round robin order wrong")
	}

	// Load one server; least-loaded must avoid it.
	servers[0].Submit(&sim.Job{Service: time.Hour})
	servers[0].Submit(&sim.Job{Service: time.Hour})
	if got := (LeastLoaded{}).Pick(rng, eps); got == servers[0] {
		t.Error("least-loaded picked the busy server")
	}
	// Power-of-two never crashes and returns a member.
	for i := 0; i < 100; i++ {
		got := (PowerOfTwo{}).Pick(rng, eps)
		if got != servers[0] && got != servers[1] && got != servers[2] {
			t.Fatal("pick outside set")
		}
	}
}

func TestRunValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty config")
		}
	}()
	Run(Config{})
}

func TestMachineSpreadEmpty(t *testing.T) {
	var r Result
	if r.MachineSpread() != 0 {
		t.Error("empty spread should be 0")
	}
}
