package loadbalance

import (
	"sort"
	"sync"
	"testing"

	"rpcscale/internal/stats"
)

// fakeEndpoint is a trivial Endpoint with a fixed load, for policy tests
// that don't need a simulator.
type fakeEndpoint struct{ load int }

func (f *fakeEndpoint) Load() int { return f.load }

func fakeEndpoints(loads ...int) []Endpoint {
	eps := make([]Endpoint, len(loads))
	for i, l := range loads {
		eps[i] = &fakeEndpoint{load: l}
	}
	return eps
}

// TestConcurrentPick hammers every built-in policy with concurrent Pick
// calls. Run under -race this is the satellite guarantee that policies are
// safe to share across the cluster harness's caller goroutines; without
// -race it still checks every pick lands inside the endpoint set.
func TestConcurrentPick(t *testing.T) {
	eps := fakeEndpoints(0, 3, 1, 7, 2, 5, 4, 6)
	inSet := make(map[Endpoint]bool, len(eps))
	for _, e := range eps {
		inSet[e] = true
	}
	for _, p := range Policies() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			const goroutines, picks = 8, 2000
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Each goroutine owns its RNG; only the policy's own
					// state is shared.
					rng := stats.NewRNG(uint64(g) + 1)
					for i := 0; i < picks; i++ {
						if got := p.Pick(rng, eps); !inSet[got] {
							select {
							case errs <- errOutside:
							default:
							}
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		})
	}
}

var errOutside = errorString("pick outside endpoint set")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestRoundRobinRotation(t *testing.T) {
	eps := fakeEndpoints(0, 0, 0, 0)
	rr := &RoundRobin{}
	rng := stats.NewRNG(1)
	for i := 0; i < 12; i++ {
		if got, want := rr.Pick(rng, eps), eps[i%len(eps)]; got != want {
			t.Fatalf("pick %d: got endpoint %v, want %v", i, got, want)
		}
	}
}

// TestRoundRobinConcurrentCoverage checks that concurrent round-robin
// picks still distribute evenly: with G*K total picks over N endpoints,
// every endpoint must receive exactly G*K/N.
func TestRoundRobinConcurrentCoverage(t *testing.T) {
	eps := fakeEndpoints(0, 0, 0, 0)
	rr := &RoundRobin{}
	const goroutines, picks = 4, 1000
	counts := make([]map[Endpoint]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		counts[g] = make(map[Endpoint]int)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := stats.NewRNG(uint64(g) + 1)
			for i := 0; i < picks; i++ {
				counts[g][rr.Pick(rng, eps)]++
			}
		}()
	}
	wg.Wait()
	total := make(map[Endpoint]int)
	for _, m := range counts {
		for e, n := range m {
			total[e] += n
		}
	}
	want := goroutines * picks / len(eps)
	for i, e := range eps {
		if total[e] != want {
			t.Errorf("endpoint %d got %d picks, want %d", i, total[e], want)
		}
	}
}

func TestLeastLoadedAndPowerOfTwoPreferIdle(t *testing.T) {
	eps := fakeEndpoints(9, 9, 0, 9)
	rng := stats.NewRNG(7)
	if got := (LeastLoaded{}).Pick(rng, eps); got != eps[2] {
		t.Errorf("least-loaded picked load %d", got.Load())
	}
	// Power-of-two must never pick a busy endpoint when the idle one is
	// among its two samples; over many picks the idle endpoint must win
	// strictly more than uniform share.
	idle := 0
	for i := 0; i < 4000; i++ {
		if (PowerOfTwo{}).Pick(rng, eps) == eps[2] {
			idle++
		}
	}
	if idle <= 4000/len(eps) {
		t.Errorf("power-of-two picked idle endpoint only %d/4000 times", idle)
	}
}

func TestWeightedRoundRobinSkewsTowardIdle(t *testing.T) {
	eps := fakeEndpoints(0, 19) // weights 1 and 1/20
	rng := stats.NewRNG(3)
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		if (WeightedRoundRobin{}).Pick(rng, eps) == eps[0] {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	// Expected share of eps[0] is 20/21 ≈ 0.95.
	if share := float64(counts[0]) / 10000; share < 0.90 {
		t.Errorf("idle endpoint share = %.3f, want ≳0.95", share)
	}
}

func TestSubsetIndicesDeterministicAndDisjoint(t *testing.T) {
	const n, size = 12, 3
	// Deterministic: same client, same answer.
	a := SubsetIndices(n, 5, size)
	b := SubsetIndices(n, 5, size)
	if len(a) != size {
		t.Fatalf("subset size = %d, want %d", len(a), size)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SubsetIndices not deterministic")
		}
	}

	// Clients within one round cover disjoint slices of all n backends.
	perRound := n / size
	seen := make(map[int]int)
	for client := 0; client < perRound; client++ {
		for _, idx := range SubsetIndices(n, client, size) {
			if idx < 0 || idx >= n {
				t.Fatalf("index %d out of range", idx)
			}
			seen[idx]++
		}
	}
	if len(seen) != n {
		t.Errorf("round 0 covered %d/%d backends", len(seen), n)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("backend %d assigned %d times within one round", idx, c)
		}
	}

	// Different rounds shuffle differently (overwhelmingly likely).
	r0 := SubsetIndices(n, 0, size)
	r1 := SubsetIndices(n, perRound, size) // first client of round 1
	same := len(r0) == len(r1)
	if same {
		for i := range r0 {
			if r0[i] != r1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("round 0 and round 1 produced identical subsets")
	}

	// size >= n degenerates to the full set.
	full := SubsetIndices(4, 99, 10)
	if want := []int{0, 1, 2, 3}; len(full) != len(want) {
		t.Fatalf("full subset = %v", full)
	}
	if !sort.IntsAreSorted(full) {
		t.Error("subset not sorted")
	}
}

func TestSubsetPickStaysInSubset(t *testing.T) {
	eps := fakeEndpoints(0, 1, 2, 3, 4, 5, 6, 7)
	s := &Subset{ClientID: 1, Size: 2}
	want := SubsetIndices(len(eps), 1, 2)
	allowed := make(map[Endpoint]bool)
	for _, idx := range want {
		allowed[eps[idx]] = true
	}
	rng := stats.NewRNG(11)
	for i := 0; i < 200; i++ {
		if got := s.Pick(rng, eps); !allowed[got] {
			t.Fatalf("pick escaped subset %v", want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{
		"round-robin", "rr", "random", "weighted-round-robin", "wrr",
		"power-of-two", "p2c", "least-loaded", "subset",
		"subset/round-robin", "subset/power-of-two",
	} {
		p, err := ByName(name, 3)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("ByName(%q): empty policy name", name)
		}
	}
	if _, err := ByName("bogus", 0); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
	// Distinct client IDs in the same round get distinct subsets.
	p1, _ := ByName("subset", 0)
	p2, _ := ByName("subset", 1)
	eps := fakeEndpoints(0, 0, 0, 0, 0, 0, 0, 0)
	rng := stats.NewRNG(1)
	got1 := map[Endpoint]bool{}
	got2 := map[Endpoint]bool{}
	for i := 0; i < 100; i++ {
		got1[p1.Pick(rng, eps)] = true
		got2[p2.Pick(rng, eps)] = true
	}
	for e := range got1 {
		if got2[e] {
			t.Fatal("clients 0 and 1 share subset members within one round")
		}
	}
}

func TestPolicyNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Policies() {
		n := p.Name()
		if n == "" {
			t.Error("empty policy name")
		}
		if seen[n] {
			t.Errorf("duplicate policy name %q", n)
		}
		seen[n] = true
	}
}
