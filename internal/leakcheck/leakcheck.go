// Package leakcheck fails tests that leave module goroutines running.
// The goroleak analyzer proves spawn sites have a shutdown edge in the
// source; this guard proves the edges actually fire: a test that tears
// down its channels, servers, and clusters must leave no
// rpcscale-internal goroutine behind. Call Check at the top of a test
// (or setup helper) before registering teardown cleanups, so the
// comparison runs after they do.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// grace is how long the guard waits for goroutines that are already
// unwinding (a read loop observing its closed conn, a worker draining)
// before calling them leaked.
const grace = 2 * time.Second

// registered tracks tests that already installed a guard, so a test
// calling several setup helpers gets exactly one check — the first,
// whose cleanup runs after every later-registered teardown. Extra
// checks would fire while later setups' resources are still legitimately
// open and mistake their freshly spawned goroutines for leaks.
var (
	regMu      sync.Mutex
	registered = map[string]bool{}
)

// Check snapshots the live goroutines and installs a cleanup that fails
// t if, once the test and its later-registered cleanups finish, new
// goroutines running module code are still alive after a grace period.
// Repeated calls from the same test are no-ops.
func Check(t testing.TB) {
	regMu.Lock()
	if registered[t.Name()] {
		regMu.Unlock()
		return
	}
	registered[t.Name()] = true
	regMu.Unlock()
	before := snapshot()
	t.Cleanup(func() {
		regMu.Lock()
		delete(registered, t.Name())
		regMu.Unlock()
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) outlived the test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// snapshot returns the ids of all live goroutines.
func snapshot() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range stacks() {
		ids[goroutineID(g)] = true
	}
	return ids
}

// leakedSince returns the stacks of goroutines that did not exist at
// snapshot time and are running module code.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range stacks() {
		if before[goroutineID(g)] || !interesting(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// interesting reports whether a stack belongs to this module's runtime
// machinery — the goroutines whose lifecycle the shutdown edges bound.
// Everything else (testing harness, stdlib pollers, the guard itself)
// is out of scope.
func interesting(g string) bool {
	return strings.Contains(g, "rpcscale/internal/") &&
		!strings.Contains(g, "rpcscale/internal/leakcheck")
}

// stacks captures every goroutine's stack, growing the buffer until the
// full dump fits, and splits it per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// goroutineID extracts the "goroutine N" prefix that keys a stack; ids
// are not reused, so they identify goroutines across snapshots.
func goroutineID(g string) string {
	if i := strings.IndexByte(g, '['); i > 0 {
		return strings.TrimSpace(g[:i])
	}
	return fmt.Sprintf("unparsed:%s", g)
}
