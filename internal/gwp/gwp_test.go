package gwp

import (
	"math"
	"sync"
	"testing"
)

func TestRecordAndSnapshot(t *testing.T) {
	p := New()
	p.Record("networkdisk", "networkdisk/Write", Application, 80)
	p.Record("networkdisk", "networkdisk/Write", Compression, 10)
	p.Record("networkdisk", "networkdisk/Write", Networking, 5)
	p.Record("spanner", "spanner/Read", Application, 100)
	p.Record("spanner", "spanner/Read", Serialization, 5)

	s := p.Snapshot()
	if got := s.Total(); got != 200 {
		t.Errorf("total = %v", got)
	}
	if got := s.TaxCycles(); got != 20 {
		t.Errorf("tax cycles = %v", got)
	}
	if got := s.TaxShare(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("tax share = %v", got)
	}
	if got := s.CategoryShare(Compression); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("compression share = %v", got)
	}
}

func TestServicesSortedByTotal(t *testing.T) {
	p := New()
	p.Record("small", "small/M", Application, 1)
	p.Record("big", "big/M", Application, 100)
	p.Record("mid", "mid/M", Application, 10)
	s := p.Snapshot()
	if len(s.Services) != 3 {
		t.Fatalf("services = %d", len(s.Services))
	}
	if s.Services[0].Service != "big" || s.Services[2].Service != "small" {
		t.Errorf("order = %v %v %v", s.Services[0].Service, s.Services[1].Service, s.Services[2].Service)
	}
}

func TestPerMethodTotals(t *testing.T) {
	p := New()
	p.Record("s", "s/A", Application, 3)
	p.Record("s", "s/A", RPCLibrary, 2)
	p.Record("s", "s/B", Application, 7)
	s := p.Snapshot()
	if s.ByMethod["s/A"] != 5 || s.ByMethod["s/B"] != 7 {
		t.Errorf("byMethod = %v", s.ByMethod)
	}
}

func TestNonPositiveIgnored(t *testing.T) {
	p := New()
	p.Record("s", "s/M", Application, 0)
	p.Record("s", "s/M", Application, -5)
	if got := p.Snapshot().Total(); got != 0 {
		t.Errorf("total = %v", got)
	}
}

func TestEmptySnapshotShares(t *testing.T) {
	s := New().Snapshot()
	if s.TaxShare() != 0 || s.CategoryShare(Compression) != 0 {
		t.Error("empty shares should be 0")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	p := New()
	p.Record("s", "s/M", Application, 5)
	s := p.Snapshot()
	p.Record("s", "s/M", Application, 5)
	if s.Total() != 5 {
		t.Error("snapshot mutated by later records")
	}
	s.ByMethod["s/M"] = 999
	if p.Snapshot().ByMethod["s/M"] != 10 {
		t.Error("snapshot map aliased profiler state")
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Record("s", "s/M", Compression, 5)
	p.Reset()
	s := p.Snapshot()
	if s.Total() != 0 || len(s.Services) != 0 || len(s.ByMethod) != 0 {
		t.Error("reset incomplete")
	}
}

func TestConcurrentRecord(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Record("s", "s/M", Application, 1)
			}
		}()
	}
	wg.Wait()
	if got := p.Snapshot().Total(); got != 8000 {
		t.Errorf("total = %v", got)
	}
}

func TestCategoryNames(t *testing.T) {
	if Application.String() != "Application" || Compression.String() != "Compression" {
		t.Error("category names wrong")
	}
	if Category(99).String() == "" {
		t.Error("unknown category should format")
	}
	if len(TaxCategories()) != NumCategories-1 {
		t.Error("TaxCategories should exclude Application only")
	}
}

func TestPaperTaxShape(t *testing.T) {
	// Feed the profiler the paper's Fig. 20 proportions and verify the
	// shares come back out: app 92.9%, compression 3.1%, networking 1.7%,
	// serialization 1.2%, RPC library 1.1% -> tax 7.1%.
	p := New()
	p.Record("fleet", "fleet/all", Application, 92.9)
	p.Record("fleet", "fleet/all", Compression, 3.1)
	p.Record("fleet", "fleet/all", Networking, 1.7)
	p.Record("fleet", "fleet/all", Serialization, 1.2)
	p.Record("fleet", "fleet/all", RPCLibrary, 1.1)
	s := p.Snapshot()
	if got := s.TaxShare(); math.Abs(got-0.071) > 1e-9 {
		t.Errorf("tax share = %v, want 0.071", got)
	}
}
