// Package gwp implements a Google-Wide-Profiling-style fleet CPU profiler:
// sampled cycle counts attributed to application work or to one of the RPC
// cycle-tax categories. Figure 20 of the paper — the 7.1% fleet-wide RPC
// cycle tax split into compression (3.1%), networking (1.7%),
// serialization (1.2%), and the RPC library itself (1.1%) — is computed
// from exactly this attribution.
package gwp

import (
	"fmt"
	"sort"
	"sync"
)

// Category attributes CPU cycles to a layer of the stack.
type Category uint8

// Cycle attribution categories. Application is the handler itself;
// everything else is RPC cycle tax.
const (
	Application Category = iota
	Compression
	Networking
	Serialization
	RPCLibrary

	NumCategories int = iota
)

var categoryNames = [NumCategories]string{
	"Application", "Compression", "Networking", "Serialization", "RPCLibrary",
}

// String returns the category name.
func (c Category) String() string {
	if int(c) >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// TaxCategories lists the non-application categories.
func TaxCategories() []Category {
	return []Category{Compression, Networking, Serialization, RPCLibrary}
}

// Profiler accumulates sampled cycles. It is safe for concurrent use.
// Cycles are in normalized units (architecture-neutral), as in Fig. 21.
type Profiler struct {
	mu       sync.Mutex
	byCat    [NumCategories]float64
	bySvc    map[string]*ServiceProfile
	byMethod map[string]float64 // total cycles per method (all categories)
}

// ServiceProfile is the per-service cycle attribution.
type ServiceProfile struct {
	Service string
	ByCat   [NumCategories]float64
}

// Total returns all cycles attributed to the service.
func (p *ServiceProfile) Total() float64 {
	var t float64
	for _, v := range p.ByCat {
		t += v
	}
	return t
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{
		bySvc:    make(map[string]*ServiceProfile),
		byMethod: make(map[string]float64),
	}
}

// Record attributes cycles to a (service, method, category) triple.
func (p *Profiler) Record(service, method string, cat Category, cycles float64) {
	if cycles <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.byCat[cat] += cycles
	sp := p.bySvc[service]
	if sp == nil {
		sp = &ServiceProfile{Service: service}
		p.bySvc[service] = sp
	}
	sp.ByCat[cat] += cycles
	p.byMethod[method] += cycles
}

// Merge folds all cycles recorded in other into p. Each (service,
// category) and method key is combined with a single addition, so the
// result of merging a fixed sequence of profilers is deterministic
// regardless of map iteration order. Generation shards record into
// private profilers and merge them in shard-index order, which keeps
// floating-point accumulation identical from run to run.
//
// other is snapshotted under its own lock before p's lock is taken, so
// the two Profiler locks are never held together: concurrent
// a.Merge(b) and b.Merge(a) cannot deadlock on crossed acquisition.
func (p *Profiler) Merge(other *Profiler) {
	if other == nil || other == p {
		return
	}
	other.mu.Lock()
	byCat := other.byCat
	bySvc := make(map[string]*ServiceProfile, len(other.bySvc))
	for name, osp := range other.bySvc {
		cp := *osp
		bySvc[name] = &cp
	}
	byMethod := make(map[string]float64, len(other.byMethod))
	for m, v := range other.byMethod {
		byMethod[m] = v
	}
	other.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	for c, v := range byCat {
		p.byCat[c] += v
	}
	for name, osp := range bySvc {
		sp := p.bySvc[name]
		if sp == nil {
			sp = &ServiceProfile{Service: name}
			p.bySvc[name] = sp
		}
		for c, v := range osp.ByCat {
			sp.ByCat[c] += v
		}
	}
	for m, v := range byMethod {
		p.byMethod[m] += v
	}
}

// Snapshot is a point-in-time view of fleet cycle attribution.
type Snapshot struct {
	ByCat    [NumCategories]float64
	Services []*ServiceProfile // sorted by total cycles, descending
	ByMethod map[string]float64
}

// Total returns all cycles in the snapshot.
func (s *Snapshot) Total() float64 {
	var t float64
	for _, v := range s.ByCat {
		t += v
	}
	return t
}

// TaxCycles returns the cycles in tax categories.
func (s *Snapshot) TaxCycles() float64 { return s.Total() - s.ByCat[Application] }

// TaxShare returns the fraction of all cycles that are RPC tax — the
// paper's headline 7.1%.
func (s *Snapshot) TaxShare() float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return s.TaxCycles() / total
}

// CategoryShare returns a category's fraction of all cycles.
func (s *Snapshot) CategoryShare(cat Category) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return s.ByCat[cat] / total
}

// Snapshot captures the current attribution.
func (p *Profiler) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := &Snapshot{ByCat: p.byCat, ByMethod: make(map[string]float64, len(p.byMethod))}
	for m, v := range p.byMethod {
		snap.ByMethod[m] = v
	}
	for _, sp := range p.bySvc {
		cp := *sp
		snap.Services = append(snap.Services, &cp)
	}
	sort.Slice(snap.Services, func(i, j int) bool {
		ti, tj := snap.Services[i].Total(), snap.Services[j].Total()
		if ti != tj {
			return ti > tj
		}
		return snap.Services[i].Service < snap.Services[j].Service
	})
	return snap
}

// Reset clears all recorded samples.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.byCat = [NumCategories]float64{}
	p.bySvc = make(map[string]*ServiceProfile)
	p.byMethod = make(map[string]float64)
}
