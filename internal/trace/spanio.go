package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanRecord is the stable JSON-lines serialization of a Span, written by
// cmd/fleetgen and consumed by cmd/tracequery and cmd/rpcanalyze. It is a
// plain data shape so external tools (jq, pandas) can use dumps directly.
type SpanRecord struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`

	// LinkedParents are the extra in-edges of a DAG-shaped trace (shared
	// dependencies reached from several parents). Absent for tree-shaped
	// spans and in dumps written before the DAG model; readers treat a
	// missing field as no extra edges.
	LinkedParents []uint64 `json:"linked_parents,omitempty"`

	Method  string `json:"method"`
	Service string `json:"service"`

	// Tier is the method's state discipline ("stateless", "stateful",
	// "cache"). Omitted when stateless — the default every pre-tier dump
	// decodes to.
	Tier string `json:"tier,omitempty"`

	// Motif marks motif-pack spans ("fanin", "cache_hit", "cache_miss",
	// "sidecar", "replica"); omitted for ordinary calls.
	Motif string `json:"motif,omitempty"`

	Client  string `json:"client_cluster"`
	Server  string `json:"server_cluster"`
	StartNs int64  `json:"start_ns"`

	// Components holds the nine latencies in Component order, ns.
	Components [NumComponents]int64 `json:"components_ns"`

	ReqBytes  int64   `json:"req_bytes"`
	RespBytes int64   `json:"resp_bytes"`
	CPUCycles float64 `json:"cpu_cycles,omitempty"`

	// CPUByCat is the per-category cycle split in gwp.Category order
	// (Application, Compression, Networking, Serialization, RPCLibrary).
	// Absent in dumps written before the split; readers fall back to
	// attributing CPUCycles entirely to Application.
	CPUByCat []float64 `json:"cpu_by_cat,omitempty"`

	Error  string `json:"error,omitempty"`
	Hedged bool   `json:"hedged,omitempty"`
}

// ToRecord converts a span to its serialization shape.
func ToRecord(s *Span) SpanRecord {
	r := SpanRecord{
		TraceID:   uint64(s.TraceID),
		SpanID:    uint64(s.SpanID),
		ParentID:  uint64(s.ParentID),
		Method:    s.Method,
		Service:   s.Service,
		Client:    s.ClientCluster,
		Server:    s.ServerCluster,
		StartNs:   int64(s.Start),
		ReqBytes:  s.RequestBytes,
		RespBytes: s.ResponseBytes,
		CPUCycles: s.CPUCycles,
		Hedged:    s.Hedged,
	}
	if len(s.LinkedParents) > 0 {
		r.LinkedParents = make([]uint64, len(s.LinkedParents))
		for i, p := range s.LinkedParents {
			r.LinkedParents[i] = uint64(p)
		}
	}
	if s.Tier != TierStateless {
		r.Tier = s.Tier.String()
	}
	if s.Motif != MotifNone {
		r.Motif = s.Motif.String()
	}
	for i, d := range s.Breakdown {
		r.Components[i] = int64(d)
	}
	if s.HasCPUSplit() {
		r.CPUByCat = append([]float64(nil), s.CPUByCategory[:]...)
	}
	if s.Err.IsError() {
		r.Error = s.Err.String()
	}
	return r
}

// ToSpan converts a record back to a span.
func (r *SpanRecord) ToSpan() *Span {
	s := &Span{
		TraceID:       TraceID(r.TraceID),
		SpanID:        SpanID(r.SpanID),
		ParentID:      SpanID(r.ParentID),
		Method:        r.Method,
		Service:       r.Service,
		ClientCluster: r.Client,
		ServerCluster: r.Server,
		Start:         time.Duration(r.StartNs),
		RequestBytes:  r.ReqBytes,
		ResponseBytes: r.RespBytes,
		Tier:          ParseTier(r.Tier),
		Motif:         ParseMotif(r.Motif),
		CPUCycles:     r.CPUCycles,
		Hedged:        r.Hedged,
	}
	if len(r.LinkedParents) > 0 {
		s.LinkedParents = make([]SpanID, len(r.LinkedParents))
		for i, p := range r.LinkedParents {
			s.LinkedParents[i] = SpanID(p)
		}
	}
	for i, v := range r.Components {
		s.Breakdown[i] = time.Duration(v)
	}
	for i, v := range r.CPUByCat {
		if i >= len(s.CPUByCategory) {
			break
		}
		s.CPUByCategory[i] = v
	}
	if r.Error != "" {
		for code := ErrorCode(0); int(code) < NumErrorCodes; code++ {
			if code.String() == r.Error {
				s.Err = code
				break
			}
		}
	}
	return s
}

// WriteSpans streams spans to w as JSON lines.
func WriteSpans(w io.Writer, spans []*Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(ToRecord(s)); err != nil {
			return fmt.Errorf("trace: encoding span: %w", err)
		}
	}
	return bw.Flush()
}

// SpanWriter streams spans to an underlying writer as JSON lines. It is
// safe for concurrent use, so generation shards can write spans as they
// produce them without materializing the dataset first. Interleaving
// across concurrent writers is arbitrary, but each record is written
// atomically, so the dump content is well-formed regardless of schedule.
type SpanWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	n   uint64
}

// NewSpanWriter returns a writer streaming JSON-lines span records to w.
func NewSpanWriter(w io.Writer) *SpanWriter {
	bw := bufio.NewWriterSize(w, 1<<20)
	return &SpanWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write encodes one span.
func (w *SpanWriter) Write(s *Span) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(ToRecord(s)); err != nil {
		return fmt.Errorf("trace: encoding span: %w", err)
	}
	w.n++
	return nil
}

// Count returns how many spans have been written.
func (w *SpanWriter) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush writes any buffered records to the underlying writer.
func (w *SpanWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// ScanSpans streams a JSON-lines span dump to fn one span at a time, so
// arbitrarily large dumps can be analyzed out-of-core with memory bounded
// by a single record. It uses a json.Decoder with a growable buffer, so
// records are not subject to any fixed line-length cap. Scanning stops at
// the first error, including any error returned by fn.
func ScanSpans(r io.Reader, fn func(*Span) error) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	for n := 1; ; n++ {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("trace: span record %d: %w", n, err)
		}
		if err := fn(rec.ToSpan()); err != nil {
			return err
		}
	}
}

// ReadSpans parses a JSON-lines span stream into memory. Prefer ScanSpans
// when the spans can be consumed one at a time.
func ReadSpans(r io.Reader) ([]*Span, error) {
	var out []*Span
	err := ScanSpans(r, func(s *Span) error {
		out = append(out, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
