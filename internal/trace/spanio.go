package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// SpanRecord is the stable JSON-lines serialization of a Span, written by
// cmd/fleetgen and consumed by cmd/tracequery and cmd/rpcanalyze. It is a
// plain data shape so external tools (jq, pandas) can use dumps directly.
type SpanRecord struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Method   string `json:"method"`
	Service  string `json:"service"`
	Client   string `json:"client_cluster"`
	Server   string `json:"server_cluster"`
	StartNs  int64  `json:"start_ns"`

	// Components holds the nine latencies in Component order, ns.
	Components [NumComponents]int64 `json:"components_ns"`

	ReqBytes  int64   `json:"req_bytes"`
	RespBytes int64   `json:"resp_bytes"`
	CPUCycles float64 `json:"cpu_cycles,omitempty"`

	// CPUByCat is the per-category cycle split in gwp.Category order
	// (Application, Compression, Networking, Serialization, RPCLibrary).
	// Absent in dumps written before the split; readers fall back to
	// attributing CPUCycles entirely to Application.
	CPUByCat []float64 `json:"cpu_by_cat,omitempty"`

	Error  string `json:"error,omitempty"`
	Hedged bool   `json:"hedged,omitempty"`
}

// ToRecord converts a span to its serialization shape.
func ToRecord(s *Span) SpanRecord {
	r := SpanRecord{
		TraceID:   uint64(s.TraceID),
		SpanID:    uint64(s.SpanID),
		ParentID:  uint64(s.ParentID),
		Method:    s.Method,
		Service:   s.Service,
		Client:    s.ClientCluster,
		Server:    s.ServerCluster,
		StartNs:   int64(s.Start),
		ReqBytes:  s.RequestBytes,
		RespBytes: s.ResponseBytes,
		CPUCycles: s.CPUCycles,
		Hedged:    s.Hedged,
	}
	for i, d := range s.Breakdown {
		r.Components[i] = int64(d)
	}
	if s.HasCPUSplit() {
		r.CPUByCat = append([]float64(nil), s.CPUByCategory[:]...)
	}
	if s.Err.IsError() {
		r.Error = s.Err.String()
	}
	return r
}

// ToSpan converts a record back to a span.
func (r *SpanRecord) ToSpan() *Span {
	s := &Span{
		TraceID:       TraceID(r.TraceID),
		SpanID:        SpanID(r.SpanID),
		ParentID:      SpanID(r.ParentID),
		Method:        r.Method,
		Service:       r.Service,
		ClientCluster: r.Client,
		ServerCluster: r.Server,
		Start:         time.Duration(r.StartNs),
		RequestBytes:  r.ReqBytes,
		ResponseBytes: r.RespBytes,
		CPUCycles:     r.CPUCycles,
		Hedged:        r.Hedged,
	}
	for i, v := range r.Components {
		s.Breakdown[i] = time.Duration(v)
	}
	for i, v := range r.CPUByCat {
		if i >= len(s.CPUByCategory) {
			break
		}
		s.CPUByCategory[i] = v
	}
	if r.Error != "" {
		for code := ErrorCode(0); int(code) < NumErrorCodes; code++ {
			if code.String() == r.Error {
				s.Err = code
				break
			}
		}
	}
	return s
}

// WriteSpans streams spans to w as JSON lines.
func WriteSpans(w io.Writer, spans []*Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(ToRecord(s)); err != nil {
			return fmt.Errorf("trace: encoding span: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSpans parses a JSON-lines span stream.
func ReadSpans(r io.Reader) ([]*Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []*Span
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec.ToSpan())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading spans: %w", err)
	}
	return out, nil
}
