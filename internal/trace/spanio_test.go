package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleSpan() *Span {
	var b Breakdown
	for i := range b {
		b[i] = time.Duration(i+1) * time.Millisecond
	}
	return &Span{
		TraceID: 42, SpanID: 7, ParentID: 3,
		Method: "svc/M", Service: "svc",
		ClientCluster: "a", ServerCluster: "b",
		Start:        90 * time.Minute,
		Breakdown:    b,
		RequestBytes: 1234, ResponseBytes: 567,
		CPUCycles: 0.125,
		Err:       Cancelled,
		Hedged:    true,
	}
}

// spansEqual compares spans field-by-field; Span is no longer directly
// comparable since LinkedParents made it a DAG node.
func spansEqual(a, b *Span) bool { return reflect.DeepEqual(a, b) }

func TestSpanRecordRoundTrip(t *testing.T) {
	in := sampleSpan()
	rec := ToRecord(in)
	out := rec.ToSpan()
	if !spansEqual(out, in) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSpanRecordOKError(t *testing.T) {
	in := sampleSpan()
	in.Err = OK
	rec := ToRecord(in)
	if rec.Error != "" {
		t.Error("OK should serialize as empty error")
	}
	if rec.ToSpan().Err != OK {
		t.Error("OK lost in round trip")
	}
}

func TestWriteReadSpans(t *testing.T) {
	spans := []*Span{sampleSpan(), sampleSpan()}
	spans[1].SpanID = 8
	spans[1].Err = OK
	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d spans", len(got))
	}
	for i := range spans {
		if !spansEqual(got[i], spans[i]) {
			t.Fatalf("span %d mismatch", i)
		}
	}
}

func TestReadSpansSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteSpans(&buf, []*Span{sampleSpan()})
	withBlank := "\n" + buf.String() + "\n\n"
	got, err := ReadSpans(strings.NewReader(withBlank))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d spans", len(got))
	}
}

func TestReadSpansBadJSON(t *testing.T) {
	if _, err := ReadSpans(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSpanRecordRoundTripProperty(t *testing.T) {
	f := func(tid, sid, pid uint64, req, resp int64, cpu float64, errSel uint8, hedged bool, comps [9]int32) bool {
		s := &Span{
			TraceID: TraceID(tid), SpanID: SpanID(sid), ParentID: SpanID(pid),
			Method: "m", Service: "s",
			ClientCluster: "c1", ServerCluster: "c2",
			RequestBytes: abs64(req), ResponseBytes: abs64(resp),
			CPUCycles: cpu,
			Err:       ErrorCode(errSel % uint8(NumErrorCodes)),
			Hedged:    hedged,
		}
		for i, v := range comps {
			if v < 0 {
				v = -v
			}
			s.Breakdown[i] = time.Duration(v)
		}
		// NaN CPU cycles are not JSON-representable; skip.
		if cpu != cpu {
			return true
		}
		rec := ToRecord(s)
		return spansEqual(rec.ToSpan(), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == -1<<63 {
			return 1<<63 - 1
		}
		return -v
	}
	return v
}
