package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// oldFormatLine is a dump line exactly as pre-DAG builds wrote it: no
// linked_parents, tier, or motif keys. It must keep parsing forever.
const oldFormatLine = `{"trace_id":42,"span_id":7,"parent_id":3,"method":"svc/M","service":"svc","client_cluster":"a","server_cluster":"b","start_ns":5400000000000,"components_ns":[1000000,2000000,3000000,4000000,5000000,6000000,7000000,8000000,9000000],"req_bytes":1234,"resp_bytes":567,"cpu_cycles":0.125}`

func TestOldFormatDumpParses(t *testing.T) {
	spans, err := ReadSpans(strings.NewReader(oldFormatLine + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.LinkedParents != nil {
		t.Errorf("LinkedParents = %v, want nil", s.LinkedParents)
	}
	if s.Tier != TierStateless {
		t.Errorf("Tier = %v, want stateless default", s.Tier)
	}
	if s.Motif != MotifNone {
		t.Errorf("Motif = %v, want none default", s.Motif)
	}
	if s.Method != "svc/M" || s.ParentID != 3 || s.RequestBytes != 1234 {
		t.Errorf("pre-DAG fields corrupted: %+v", s)
	}
}

func TestUnknownTierMotifFallBack(t *testing.T) {
	// A dump from a future build with names this build doesn't know must
	// still load, falling back to the zero values.
	line := strings.Replace(oldFormatLine, `"method"`,
		`"tier":"quantum","motif":"timewarp","method"`, 1)
	spans, err := ReadSpans(strings.NewReader(line + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if spans[0].Tier != TierStateless || spans[0].Motif != MotifNone {
		t.Errorf("unknown names must decode to defaults, got tier=%v motif=%v",
			spans[0].Tier, spans[0].Motif)
	}
}

func TestDAGSpanRoundTripsByteIdentical(t *testing.T) {
	in := sampleSpan()
	in.LinkedParents = []SpanID{11, 12}
	in.Tier = TierCache
	in.Motif = MotifFanIn

	first, err := json.Marshal(ToRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	var rec SpanRecord
	if err := json.Unmarshal(first, &rec); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(ToRecord(rec.ToSpan()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("serialization not stable:\n first=%s\nsecond=%s", first, second)
	}
}

func TestDAGFieldsOmittedWhenDefault(t *testing.T) {
	// Tree-shaped stateless spans serialize without any DAG keys, so
	// no-motif dumps stay readable by pre-DAG tools and stay the same size.
	out, err := json.Marshal(ToRecord(sampleSpan()))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"linked_parents", "tier", "motif"} {
		if bytes.Contains(out, []byte(key)) {
			t.Errorf("default span serialized %q: %s", key, out)
		}
	}
	in := sampleSpan()
	in.Tier = TierStateful
	in.Motif = MotifSidecar
	in.LinkedParents = []SpanID{9}
	out, err = json.Marshal(ToRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"linked_parents":[9]`, `"tier":"stateful"`, `"motif":"sidecar"`} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("missing %s in %s", want, out)
		}
	}
}
