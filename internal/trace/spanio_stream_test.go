package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Regression test for the old bufio.Scanner path, which failed on any
// record longer than its fixed 1 MiB buffer. A >1 MiB span record must
// now parse.
func TestReadSpansOversizedRecord(t *testing.T) {
	s := &Span{
		TraceID: 1, SpanID: 2, Method: strings.Repeat("m", 2<<20),
		Service: "svc", RequestBytes: 10, ResponseBytes: 20,
	}
	var buf bytes.Buffer
	if err := WriteSpans(&buf, []*Span{s}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 2<<20 {
		t.Fatalf("record only %d bytes; test needs > 1 MiB", buf.Len())
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("oversized record: %v", err)
	}
	if len(got) != 1 || got[0].Method != s.Method {
		t.Fatal("oversized record did not round-trip")
	}
}

func TestScanSpansStreams(t *testing.T) {
	spans := []*Span{
		{TraceID: 1, SpanID: 1, Method: "a/A", Service: "a"},
		{TraceID: 1, SpanID: 2, ParentID: 1, Method: "b/B", Service: "b"},
		{TraceID: 2, SpanID: 3, Method: "c/C", Service: "c"},
	}
	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var methods []string
	if err := ScanSpans(&buf, func(s *Span) error {
		methods = append(methods, s.Method)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(methods) != 3 || methods[0] != "a/A" || methods[2] != "c/C" {
		t.Fatalf("scanned %v", methods)
	}
}

func TestScanSpansPropagatesCallbackError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, []*Span{{TraceID: 1, SpanID: 1, Method: "a/A"}, {TraceID: 1, SpanID: 2, Method: "b/B"}}); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	seen := 0
	err := ScanSpans(&buf, func(*Span) error {
		seen++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if seen != 1 {
		t.Fatalf("callback ran %d times after error", seen)
	}
}

func TestScanSpansBadRecord(t *testing.T) {
	if err := ScanSpans(strings.NewReader("{not json}\n"), func(*Span) error { return nil }); err == nil {
		t.Fatal("bad record should error")
	}
}

func TestSpanWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	want := []*Span{
		{TraceID: 1, SpanID: 1, Method: "a/A", Service: "a", RequestBytes: 5},
		{TraceID: 2, SpanID: 2, Method: "b/B", Service: "b", ResponseBytes: 9},
	}
	for _, s := range want {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Method != "a/A" || got[1].ResponseBytes != 9 {
		t.Fatalf("round trip got %+v", got)
	}
}
