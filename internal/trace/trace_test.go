package trace

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mkBreakdown(vals ...time.Duration) Breakdown {
	var b Breakdown
	copy(b[:], vals)
	return b
}

func TestBreakdownTotals(t *testing.T) {
	var b Breakdown
	for i := range b {
		b[i] = time.Duration(i+1) * time.Millisecond
	}
	if got, want := b.Total(), 45*time.Millisecond; got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if got, want := b.App(), 5*time.Millisecond; got != want {
		t.Errorf("App = %v, want %v", got, want)
	}
	if got, want := b.Tax(), 40*time.Millisecond; got != want {
		t.Errorf("Tax = %v, want %v", got, want)
	}
	// Queue = components 0,3,5,8 = 1+4+6+9 = 20ms.
	if got, want := b.Queue(), 20*time.Millisecond; got != want {
		t.Errorf("Queue = %v, want %v", got, want)
	}
	// Stack = 2+7 = 9ms; Wire = 3+8 = 11ms.
	if got, want := b.Stack(), 9*time.Millisecond; got != want {
		t.Errorf("Stack = %v, want %v", got, want)
	}
	if got, want := b.Wire(), 11*time.Millisecond; got != want {
		t.Errorf("Wire = %v, want %v", got, want)
	}
	if got := b.TaxRatio(); math.Abs(got-40.0/45.0) > 1e-12 {
		t.Errorf("TaxRatio = %v", got)
	}
}

func TestBreakdownGroupsPartitionTotal(t *testing.T) {
	// Queue + Stack + Wire + App must always equal Total.
	f := func(vals [9]int32) bool {
		var b Breakdown
		for i, v := range vals {
			if v < 0 {
				v = -v
			}
			b[i] = time.Duration(v)
		}
		return b.Queue()+b.Stack()+b.Wire()+b.App() == b.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBreakdownDominant(t *testing.T) {
	var b Breakdown
	b[ServerApp] = 10 * time.Millisecond
	b[ReqNetworkWire] = 3 * time.Millisecond
	if got := b.Dominant(); got != ServerApp {
		t.Errorf("Dominant = %v", got)
	}
	b[ClientRecvQueue] = 20 * time.Millisecond
	if got := b.Dominant(); got != ClientRecvQueue {
		t.Errorf("Dominant = %v", got)
	}
}

func TestBreakdownZeroTaxRatio(t *testing.T) {
	var b Breakdown
	if b.TaxRatio() != 0 {
		t.Error("zero breakdown should have zero tax ratio")
	}
}

func TestBreakdownAddScale(t *testing.T) {
	a := mkBreakdown(2*time.Millisecond, 4*time.Millisecond)
	b := mkBreakdown(4*time.Millisecond, 8*time.Millisecond)
	a.Add(&b)
	a.Scale(3)
	if a[0] != 2*time.Millisecond || a[1] != 4*time.Millisecond {
		t.Errorf("Add/Scale gave %v", a[:2])
	}
	a.Scale(0) // must be no-op
	if a[0] != 2*time.Millisecond {
		t.Error("Scale(0) modified breakdown")
	}
}

func TestComponentNames(t *testing.T) {
	if ServerApp.String() != "ServerApp" {
		t.Errorf("name = %q", ServerApp.String())
	}
	if ServerApp.Label() != "Server Application" {
		t.Errorf("label = %q", ServerApp.Label())
	}
	if Component(99).String() == "" || Component(-1).String() == "" {
		t.Error("out-of-range components should still format")
	}
	if len(Components()) != NumComponents {
		t.Error("Components() length mismatch")
	}
}

func TestErrorCodeStrings(t *testing.T) {
	if OK.String() != "OK" || Cancelled.String() != "Cancelled" {
		t.Error("error names wrong")
	}
	if OK.IsError() {
		t.Error("OK should not be an error")
	}
	if !Cancelled.IsError() {
		t.Error("Cancelled should be an error")
	}
	if ErrorCode(200).String() == "" {
		t.Error("unknown code should format")
	}
}

// buildSpanTree constructs a simple trace: root -> (a, b), a -> (c, d).
func buildSpanTree() []*Span {
	return []*Span{
		{TraceID: 1, SpanID: 1, Method: "root"},
		{TraceID: 1, SpanID: 2, ParentID: 1, Method: "a"},
		{TraceID: 1, SpanID: 3, ParentID: 1, Method: "b"},
		{TraceID: 1, SpanID: 4, ParentID: 2, Method: "c"},
		{TraceID: 1, SpanID: 5, ParentID: 2, Method: "d"},
	}
}

func TestBuildTrees(t *testing.T) {
	trees := BuildTrees(buildSpanTree())
	if len(trees) != 1 {
		t.Fatalf("got %d trees", len(trees))
	}
	tr := trees[0]
	if tr.Spans != 5 {
		t.Errorf("spans = %d", tr.Spans)
	}
	if tr.Root.Span.Method != "root" {
		t.Errorf("root = %q", tr.Root.Span.Method)
	}
	if got := tr.Root.Descendants(); got != 4 {
		t.Errorf("descendants = %d", got)
	}
	if got := tr.Root.Depth(); got != 2 {
		t.Errorf("depth = %d", got)
	}
}

func TestBuildTreesMultipleTraces(t *testing.T) {
	spans := buildSpanTree()
	spans = append(spans,
		&Span{TraceID: 2, SpanID: 1, Method: "other-root"},
		&Span{TraceID: 2, SpanID: 2, ParentID: 1, Method: "other-child"},
	)
	trees := BuildTrees(spans)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
}

func TestBuildTreesOrphanPromoted(t *testing.T) {
	spans := []*Span{
		{TraceID: 1, SpanID: 10, ParentID: 99, Method: "orphan"}, // parent missing
		{TraceID: 1, SpanID: 11, ParentID: 10, Method: "child-of-orphan"},
	}
	trees := BuildTrees(spans)
	if len(trees) != 1 {
		t.Fatalf("got %d trees", len(trees))
	}
	if trees[0].Root.Span.Method != "orphan" || trees[0].Spans != 2 {
		t.Errorf("orphan tree = %+v", trees[0])
	}
}

func TestBuildTreesSelfParent(t *testing.T) {
	// A span whose parent ID equals its own span ID must not create a cycle.
	spans := []*Span{{TraceID: 1, SpanID: 7, ParentID: 7, Method: "self"}}
	trees := BuildTrees(spans)
	if len(trees) != 1 || trees[0].Spans != 1 {
		t.Fatalf("self-parent handling wrong: %+v", trees)
	}
}

func TestWalkAncestorCounts(t *testing.T) {
	trees := BuildTrees(buildSpanTree())
	got := map[string]int{}
	trees[0].Root.Walk(func(n *Node, ancestors int) {
		got[n.Span.Method] = ancestors
	})
	want := map[string]int{"root": 0, "a": 1, "b": 1, "c": 2, "d": 2}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("ancestors[%s] = %d, want %d", k, got[k], v)
		}
	}
}

func TestCollectorSampling(t *testing.T) {
	c := NewCollector(10, 0)
	for id := TraceID(0); id < 100; id++ {
		c.Collect(&Span{TraceID: id, SpanID: 1})
	}
	if c.Seen() != 100 {
		t.Errorf("seen = %d", c.Seen())
	}
	if got := len(c.Spans()); got != 10 {
		t.Errorf("sampled spans = %d, want 10", got)
	}
}

func TestCollectorCapacity(t *testing.T) {
	c := NewCollector(1, 5)
	for id := TraceID(0); id < 10; id++ {
		c.Collect(&Span{TraceID: id, SpanID: 1})
	}
	if got := len(c.Spans()); got != 5 {
		t.Errorf("retained = %d, want 5", got)
	}
	if c.Overflow() != 5 {
		t.Errorf("overflow = %d", c.Overflow())
	}
}

func TestCollectorErrorCounting(t *testing.T) {
	c := NewCollector(1, 0)
	c.Collect(&Span{TraceID: 1, SpanID: 1, Err: OK})
	c.Collect(&Span{TraceID: 2, SpanID: 1, Err: Cancelled})
	c.Collect(&Span{TraceID: 3, SpanID: 1, Err: EntityNotFound})
	if c.ErrorsSeen() != 2 {
		t.Errorf("errors = %d", c.ErrorsSeen())
	}
}

func TestCollectorSeenByCode(t *testing.T) {
	// Sampling must not affect the per-code counts: sample 1-in-10 but
	// count every span.
	c := NewCollector(10, 0)
	for i := 0; i < 10; i++ {
		c.Collect(&Span{TraceID: TraceID(i), SpanID: 1, Err: OK})
	}
	for i := 0; i < 4; i++ {
		c.Collect(&Span{TraceID: TraceID(i), SpanID: 1, Err: Unavailable})
	}
	c.Collect(&Span{TraceID: 1, SpanID: 1, Err: Cancelled})
	got := c.SeenByCode()
	if got[OK] != 10 || got[Unavailable] != 4 || got[Cancelled] != 1 {
		t.Errorf("SeenByCode = %v", got)
	}
	if got[DeadlineExceeded] != 0 {
		t.Errorf("unobserved code counted: %v", got)
	}
	c.Reset()
	if got := c.SeenByCode(); got[OK] != 0 || got[Unavailable] != 0 {
		t.Errorf("Reset left per-code counts: %v", got)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(1, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Collect(&Span{TraceID: TraceID(g*1000 + i), SpanID: 1})
			}
		}(g)
	}
	wg.Wait()
	if c.Seen() != 8000 || len(c.Spans()) != 8000 {
		t.Errorf("seen=%d retained=%d", c.Seen(), len(c.Spans()))
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(1, 0)
	c.Collect(&Span{TraceID: 1, SpanID: 1, Err: Cancelled})
	c.Reset()
	if c.Seen() != 0 || c.ErrorsSeen() != 0 || len(c.Spans()) != 0 {
		t.Error("reset incomplete")
	}
}

func TestCollectorTrees(t *testing.T) {
	c := NewCollector(1, 0)
	for _, s := range buildSpanTree() {
		c.Collect(s)
	}
	trees := c.Trees()
	if len(trees) != 1 || trees[0].Spans != 5 {
		t.Errorf("trees = %+v", trees)
	}
}

func TestMethodAggregateObserve(t *testing.T) {
	a := NewMethodAggregate("m")
	var b Breakdown
	b[ServerApp] = 9 * time.Millisecond
	b[ReqNetworkWire] = 1 * time.Millisecond
	a.Observe(&Span{
		Method: "m", Breakdown: b,
		RequestBytes: 1000, ResponseBytes: 500, CPUCycles: 0.05,
	})
	if a.Calls != 1 || a.Errors != 0 {
		t.Fatalf("calls=%d errors=%d", a.Calls, a.Errors)
	}
	if got := a.Latency.Mean(); math.Abs(got-1e7) > 1e7*0.01 {
		t.Errorf("latency mean = %v, want ~1e7 ns", got)
	}
	if got := a.TaxRatio.Mean(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("tax ratio = %v, want 0.1", got)
	}
	if got := a.SizeRatio.Mean(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("size ratio = %v, want 0.5", got)
	}
	if a.CPU.Count() != 1 {
		t.Error("CPU sample not recorded")
	}
}

func TestMethodAggregateErrorsExcludedFromLatency(t *testing.T) {
	a := NewMethodAggregate("m")
	var b Breakdown
	b[ServerApp] = time.Second
	a.Observe(&Span{Method: "m", Breakdown: b, Err: Cancelled, CPUCycles: 0.3})
	if a.Calls != 1 || a.Errors != 1 {
		t.Fatalf("calls=%d errors=%d", a.Calls, a.Errors)
	}
	if a.Latency.Count() != 0 {
		t.Error("error span latency should be excluded (paper §2.1)")
	}
	if a.TotalCPU != 0.3 {
		t.Error("error span CPU should still be counted")
	}
}

func TestAggregateByMethod(t *testing.T) {
	spans := []*Span{
		{Method: "a", Breakdown: mkBreakdown(time.Millisecond)},
		{Method: "a", Breakdown: mkBreakdown(2 * time.Millisecond)},
		{Method: "b", Breakdown: mkBreakdown(3 * time.Millisecond)},
	}
	aggs := AggregateByMethod(spans)
	if len(aggs) != 2 {
		t.Fatalf("methods = %d", len(aggs))
	}
	if aggs["a"].Calls != 2 || aggs["b"].Calls != 1 {
		t.Error("per-method call counts wrong")
	}
}

func TestSpanHelpers(t *testing.T) {
	s := &Span{ClientCluster: "x", ServerCluster: "x"}
	if !s.SameCluster() {
		t.Error("same cluster not detected")
	}
	s.ServerCluster = "y"
	if s.SameCluster() {
		t.Error("cross cluster not detected")
	}
	var b Breakdown
	b[ServerApp] = 5 * time.Millisecond
	s.Breakdown = b
	if s.Latency() != 5*time.Millisecond {
		t.Error("Latency helper wrong")
	}
}
