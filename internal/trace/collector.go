package trace

import (
	"sync"
	"sync/atomic"

	"rpcscale/internal/stats"
)

// Collector gathers spans from concurrently executing RPCs, applying
// head-based sampling by trace ID: a trace is either fully collected or
// fully dropped, which is what lets Dapper reconstruct complete trees.
// It also counts every span it sees (sampled or not) so volume statistics
// remain exact even at low sampling rates.
type Collector struct {
	sampleEvery uint64 // collect traces where id % sampleEvery == 0; 1 = all

	seen     atomic.Uint64 // spans offered
	sampled  atomic.Uint64 // spans retained
	errSeen  atomic.Uint64 // error spans offered
	overflow atomic.Uint64 // spans dropped due to capacity

	// byCode counts every offered span by outcome code (sampled or not),
	// giving the exact error-code distribution of §4 even when the span
	// store samples or overflows.
	byCode [NumErrorCodes]atomic.Uint64

	mu    sync.Mutex
	spans []*Span
	cap   int // 0 = unbounded
}

// CollectorOption configures a Collector built with New.
type CollectorOption func(*Collector)

// WithSampleEvery keeps 1-in-n traces (head-based, by trace ID). n <= 1
// collects everything, which is the default.
func WithSampleEvery(n uint64) CollectorOption {
	return func(c *Collector) {
		if n == 0 {
			n = 1
		}
		c.sampleEvery = n
	}
}

// WithCapacity bounds retained spans; past the bound, sampled spans are
// counted in Overflow and dropped. 0 (the default) is unbounded.
func WithCapacity(n int) CollectorOption {
	return func(c *Collector) { c.cap = n }
}

// New returns a collector. With no options it collects every span of
// every trace, unbounded.
func New(opts ...CollectorOption) *Collector {
	c := &Collector{sampleEvery: 1}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewCollector returns a collector that keeps every 1-in-sampleEvery
// traces, retaining at most capacity spans (0 = unbounded).
//
// Deprecated: use New with WithSampleEvery and WithCapacity; the
// positional form survives for existing callers.
func NewCollector(sampleEvery uint64, capacity int) *Collector {
	return New(WithSampleEvery(sampleEvery), WithCapacity(capacity))
}

// Sampled reports whether spans of the given trace are retained. Callers
// on the hot path can skip span construction entirely when false.
func (c *Collector) Sampled(id TraceID) bool {
	return uint64(id)%c.sampleEvery == 0
}

// Collect offers one span. It is safe for concurrent use.
func (c *Collector) Collect(s *Span) {
	c.seen.Add(1)
	if s.Err.IsError() {
		c.errSeen.Add(1)
	}
	if int(s.Err) < len(c.byCode) {
		c.byCode[s.Err].Add(1)
	}
	if !c.Sampled(s.TraceID) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap > 0 && len(c.spans) >= c.cap {
		c.overflow.Add(1)
		return
	}
	c.spans = append(c.spans, s)
	c.sampled.Add(1)
}

// Seen returns the number of spans offered, sampled or not.
func (c *Collector) Seen() uint64 { return c.seen.Load() }

// ErrorsSeen returns the number of error spans offered.
func (c *Collector) ErrorsSeen() uint64 { return c.errSeen.Load() }

// Overflow returns how many sampled spans were dropped at capacity.
func (c *Collector) Overflow() uint64 { return c.overflow.Load() }

// SeenByCode returns how many spans ended with each outcome code,
// indexed by ErrorCode. Counts cover every offered span, sampled or not.
func (c *Collector) SeenByCode() [NumErrorCodes]uint64 {
	var out [NumErrorCodes]uint64
	for i := range c.byCode {
		out[i] = c.byCode[i].Load()
	}
	return out
}

// Spans returns the retained spans. The returned slice is a snapshot;
// collection may continue concurrently.
func (c *Collector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Trees reconstructs call trees from the retained spans.
func (c *Collector) Trees() []*Tree { return BuildTrees(c.Spans()) }

// Reset discards retained spans and counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
	c.seen.Store(0)
	c.sampled.Store(0)
	c.errSeen.Store(0)
	c.overflow.Store(0)
	for i := range c.byCode {
		c.byCode[i].Store(0)
	}
}

// MethodAggregate accumulates the per-method distributions used by the
// per-method figures: completion time, tax ratio, component groups,
// sizes, CPU cost, call volume.
type MethodAggregate struct {
	Method string

	Calls  uint64
	Errors uint64

	Latency  *stats.Hist // completion time, ns
	Tax      *stats.Hist // tax latency, ns
	TaxRatio *stats.Sample
	Queue    *stats.Hist // total queuing, ns
	WireNet  *stats.Hist // wire + stack combined (Fig. 12's RW+RN), ns

	ReqBytes  *stats.Hist
	RespBytes *stats.Hist
	SizeRatio *stats.Sample // response/request

	CPU *stats.Hist // normalized cycles (only annotated spans)

	TotalLatency float64 // sum of completion times, ns (for "total RPC time" shares)
	TotalBytes   float64 // request + response bytes
	TotalCPU     float64 // sum of normalized cycles
}

// NewMethodAggregate returns an empty aggregate for a method.
func NewMethodAggregate(method string) *MethodAggregate {
	return &MethodAggregate{
		Method:    method,
		Latency:   stats.NewLatencyHist(),
		Tax:       stats.NewLatencyHist(),
		TaxRatio:  stats.NewSample(0),
		Queue:     stats.NewLatencyHist(),
		WireNet:   stats.NewLatencyHist(),
		ReqBytes:  stats.NewSizeHist(),
		RespBytes: stats.NewSizeHist(),
		SizeRatio: stats.NewSample(0),
		CPU:       stats.NewHist(1e-6, 1.1),
	}
}

// Observe folds one span into the aggregate.
func (a *MethodAggregate) Observe(s *Span) {
	a.Calls++
	if s.Err.IsError() {
		a.Errors++
		// The paper excludes the latency of error RPCs from latency
		// distributions (§2.1) but still counts their volume and cost.
		a.TotalCPU += s.CPUCycles
		return
	}
	lat := float64(s.Breakdown.Total())
	a.Latency.Add(lat)
	a.Tax.Add(float64(s.Breakdown.Tax()))
	a.TaxRatio.Add(s.Breakdown.TaxRatio())
	a.Queue.Add(float64(s.Breakdown.Queue()))
	a.WireNet.Add(float64(s.Breakdown.Wire() + s.Breakdown.Stack()))
	a.ReqBytes.Add(float64(s.RequestBytes))
	a.RespBytes.Add(float64(s.ResponseBytes))
	if s.RequestBytes > 0 {
		a.SizeRatio.Add(float64(s.ResponseBytes) / float64(s.RequestBytes))
	}
	if s.CPUCycles > 0 {
		a.CPU.Add(s.CPUCycles)
	}
	a.TotalLatency += lat
	a.TotalBytes += float64(s.RequestBytes + s.ResponseBytes)
	a.TotalCPU += s.CPUCycles
}

// AggregateByMethod folds spans into per-method aggregates.
func AggregateByMethod(spans []*Span) map[string]*MethodAggregate {
	out := make(map[string]*MethodAggregate)
	for _, s := range spans {
		a := out[s.Method]
		if a == nil {
			a = NewMethodAggregate(s.Method)
			out[s.Method] = a
		}
		a.Observe(s)
	}
	return out
}
