package trace

import (
	"testing"
)

// diamondSpans builds the canonical DAG: root 1 with children 2 and 3,
// and a shared leaf 4 whose primary parent is 2 with an extra in-edge
// from 3.
func diamondSpans() []*Span {
	mk := func(id, parent SpanID) *Span {
		return &Span{TraceID: 7, SpanID: id, ParentID: parent, Method: "m", Service: "s"}
	}
	shared := mk(4, 2)
	shared.LinkedParents = []SpanID{3}
	shared.Motif = MotifFanIn
	return []*Span{mk(1, 0), mk(2, 1), mk(3, 1), shared}
}

func TestBuildGraphsDiamond(t *testing.T) {
	graphs := BuildGraphs(diamondSpans())
	if len(graphs) != 1 {
		t.Fatalf("got %d graphs, want 1", len(graphs))
	}
	g := graphs[0]
	if g.Spans != 4 {
		t.Errorf("Spans = %d, want 4", g.Spans)
	}
	if got := g.FanInEdges(); got != 1 {
		t.Errorf("FanInEdges = %d, want 1", got)
	}
	if got := g.SharedNodes(); got != 1 {
		t.Errorf("SharedNodes = %d, want 1", got)
	}
	if got := g.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	if got := g.Width(); got != 2 {
		t.Errorf("Width = %d, want 2", got)
	}
	shared := g.Nodes[4]
	if shared == nil {
		t.Fatal("shared node missing")
	}
	if len(shared.Parents) != 2 || !shared.Shared() {
		t.Errorf("shared node has %d parents, want 2", len(shared.Parents))
	}
	// Primary parent first, linked parent after.
	if shared.Parents[0].Span.SpanID != 2 || shared.Parents[1].Span.SpanID != 3 {
		t.Errorf("parent order = [%d %d], want [2 3]",
			shared.Parents[0].Span.SpanID, shared.Parents[1].Span.SpanID)
	}
	if n3 := g.Nodes[3]; len(n3.LinkedChildren) != 1 || n3.LinkedChildren[0] != shared {
		t.Error("linked child edge missing on node 3")
	}
}

func TestBuildGraphsDropsBogusLinks(t *testing.T) {
	spans := diamondSpans()
	// Missing target, self-loop, and duplicate-of-primary must all drop.
	spans[3].LinkedParents = []SpanID{999, 4, 2, 3, 3}
	g := BuildGraphs(spans)[0]
	if got := g.FanInEdges(); got != 1 {
		t.Errorf("FanInEdges = %d, want 1 (bogus links dropped)", got)
	}
}

func TestBuildGraphsTreeDegeneratesToZeroFanIn(t *testing.T) {
	spans := diamondSpans()
	spans[3].LinkedParents = nil
	g := BuildGraphs(spans)[0]
	if g.FanInEdges() != 0 || g.SharedNodes() != 0 {
		t.Errorf("tree-shaped graph reports fan-in: edges=%d shared=%d",
			g.FanInEdges(), g.SharedNodes())
	}
}

func TestBuildGraphsSplitsByTrace(t *testing.T) {
	spans := diamondSpans()
	other := &Span{TraceID: 8, SpanID: 10, Method: "m", Service: "s"}
	graphs := BuildGraphs(append(spans, other))
	if len(graphs) != 2 {
		t.Fatalf("got %d graphs, want 2", len(graphs))
	}
}

func TestGraphWalkVisitsEveryNodeOnce(t *testing.T) {
	g := BuildGraphs(diamondSpans())[0]
	seen := map[SpanID]int{}
	g.Walk(func(n *GraphNode, depth int) { seen[n.Span.SpanID]++ })
	if len(seen) != 4 {
		t.Fatalf("walk visited %d nodes, want 4", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("node %d visited %d times", id, n)
		}
	}
}

func TestTierMotifStrings(t *testing.T) {
	for ti := 0; ti < NumTiers; ti++ {
		if ParseTier(Tier(ti).String()) != Tier(ti) {
			t.Errorf("tier %d does not round-trip", ti)
		}
	}
	for m := 0; m < NumMotifs; m++ {
		if ParseMotif(Motif(m).String()) != Motif(m) {
			t.Errorf("motif %d does not round-trip", m)
		}
	}
	if ParseTier("bogus") != TierStateless || ParseMotif("bogus") != MotifNone {
		t.Error("unknown names must fall back to the zero value")
	}
}
