package trace

// Graph is one reconstructed RPC call graph. Unlike the deprecated Tree,
// it preserves every in-edge: the primary parent link (ParentID) forms a
// spanning tree, and LinkedParents add the fan-in edges that make
// production call graphs DAGs ("Complexity at Scale": shared subtrees
// reached from multiple parents).
type Graph struct {
	Root  *GraphNode
	Spans int // nodes in the graph

	// Nodes indexes every node by span ID for O(1) lookups.
	Nodes map[SpanID]*GraphNode
}

// GraphNode is one RPC within a graph. Children follow primary-parent
// edges (the spanning tree); LinkedChildren are the extra out-edges to
// shared dependencies whose primary parent is elsewhere.
type GraphNode struct {
	Span           *Span
	Children       []*GraphNode
	LinkedChildren []*GraphNode

	// Parents holds every in-edge, primary first. len(Parents) > 1 marks
	// a shared dependency (a fan-in node).
	Parents []*GraphNode
}

// Shared reports whether the node has more than one parent.
func (n *GraphNode) Shared() bool { return len(n.Parents) > 1 }

// FanInEdges returns the number of extra in-edges across the graph: the
// count of (parent, child) links beyond the spanning tree. A tree-shaped
// graph returns 0.
func (g *Graph) FanInEdges() int {
	edges := 0
	for _, n := range g.Nodes {
		if len(n.Parents) > 1 {
			edges += len(n.Parents) - 1
		}
	}
	return edges
}

// SharedNodes returns how many nodes have more than one parent.
func (g *Graph) SharedNodes() int {
	shared := 0
	for _, n := range g.Nodes {
		if n.Shared() {
			shared++
		}
	}
	return shared
}

// Depth returns the height of the spanning tree (a single-node graph has
// depth 0). Depth follows primary edges only, so it is well-defined even
// when fan-in edges would otherwise create multiple path lengths.
func (g *Graph) Depth() int {
	var walk func(n *GraphNode) int
	walk = func(n *GraphNode) int {
		max := 0
		for _, c := range n.Children {
			if d := walk(c) + 1; d > max {
				max = d
			}
		}
		return max
	}
	if g.Root == nil {
		return 0
	}
	return walk(g.Root)
}

// Width returns the maximum number of nodes at any single depth of the
// spanning tree — the "how wide" axis of the depth-vs-width joint
// distribution.
func (g *Graph) Width() int {
	if g.Root == nil {
		return 0
	}
	var counts []int
	var walk func(n *GraphNode, depth int)
	walk = func(n *GraphNode, depth int) {
		for len(counts) <= depth {
			counts = append(counts, 0)
		}
		counts[depth]++
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(g.Root, 0)
	width := 0
	for _, c := range counts {
		if c > width {
			width = c
		}
	}
	return width
}

// Walk visits every node of the spanning tree pre-order with its primary
// depth. Fan-in edges are not traversed (each node is visited once).
func (g *Graph) Walk(fn func(n *GraphNode, depth int)) {
	if g.Root == nil {
		return
	}
	var walk func(n *GraphNode, depth int)
	walk = func(n *GraphNode, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(g.Root, 0)
}

// BuildGraphs reconstructs call graphs from a flat span collection. The
// primary parent link (ParentID) forms the spanning tree, exactly as
// BuildTrees does — spans whose primary parent is missing become roots of
// partial graphs — and every resolvable LinkedParents entry adds a fan-in
// edge on top. Linked parents that are missing from the collection, would
// self-loop, duplicate the primary edge, or repeat an already-recorded
// in-edge are dropped.
func BuildGraphs(spans []*Span) []*Graph {
	type key struct {
		t TraceID
		s SpanID
	}
	nodes := make(map[key]*GraphNode, len(spans))
	for _, s := range spans {
		nodes[key{s.TraceID, s.SpanID}] = &GraphNode{Span: s}
	}
	var roots []*GraphNode
	for _, s := range spans {
		n := nodes[key{s.TraceID, s.SpanID}]
		attached := false
		if s.ParentID != 0 {
			if p, ok := nodes[key{s.TraceID, s.ParentID}]; ok && p != n {
				p.Children = append(p.Children, n)
				n.Parents = append(n.Parents, p)
				attached = true
			}
		}
		if !attached {
			roots = append(roots, n)
		}
		for _, lp := range s.LinkedParents {
			if lp == s.ParentID || lp == s.SpanID {
				continue
			}
			p, ok := nodes[key{s.TraceID, lp}]
			if !ok || p == n {
				continue
			}
			dup := false
			for _, q := range n.Parents {
				if q == p {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			p.LinkedChildren = append(p.LinkedChildren, n)
			n.Parents = append(n.Parents, p)
		}
	}
	graphs := make([]*Graph, 0, len(roots))
	for _, r := range roots {
		g := &Graph{Root: r, Nodes: make(map[SpanID]*GraphNode)}
		var collect func(n *GraphNode)
		collect = func(n *GraphNode) {
			g.Nodes[n.Span.SpanID] = n
			for _, c := range n.Children {
				collect(c)
			}
		}
		collect(r)
		g.Spans = len(g.Nodes)
		graphs = append(graphs, g)
	}
	return graphs
}
