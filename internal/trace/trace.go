// Package trace implements a Dapper-style distributed tracing substrate:
// spans carrying the paper's nine-component RPC latency breakdown, trace
// trees reconstructed from parent links, and a sampling collector.
//
// Both data sources feed it: the real RPC stack (internal/stubby) emits
// spans measured on live TCP connections, and the fleet simulator
// (internal/sim) emits spans for synthetic RPCs. Every figure in the
// paper's evaluation is computed from collections of these spans.
package trace

import (
	"fmt"
	"time"

	"rpcscale/internal/gwp"
)

// Component indexes the nine latency components of an RPC, following
// Figure 9 of the paper. The order follows the life of a request from the
// client's send queue to the client's receive queue.
type Component int

// The nine components of RPC completion time.
const (
	ClientSendQueue Component = iota
	ReqProcStack              // request RPC processing + network stack
	ReqNetworkWire            // request propagation incl. network queuing
	ServerRecvQueue
	ServerApp // application handler, incl. nested RPC calls
	ServerSendQueue
	RespProcStack // response RPC processing + network stack
	RespNetworkWire
	ClientRecvQueue

	NumComponents int = iota
)

var componentNames = [NumComponents]string{
	"ClientSendQueue",
	"ReqProcStack",
	"ReqNetworkWire",
	"ServerRecvQueue",
	"ServerApp",
	"ServerSendQueue",
	"RespProcStack",
	"RespNetworkWire",
	"ClientRecvQueue",
}

var componentLabels = [NumComponents]string{
	"Client Send Queue",
	"Request Processing+Net Stack",
	"Request Network Wire",
	"Server Recv Queue",
	"Server Application",
	"Server Send Queue",
	"Resp Processing+Net Stack",
	"Resp Network Wire",
	"Client Recv Queue",
}

// String returns the compact component name.
func (c Component) String() string {
	if c < 0 || int(c) >= NumComponents {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// Label returns the human-readable label used in the paper's figures.
func (c Component) Label() string {
	if c < 0 || int(c) >= NumComponents {
		return c.String()
	}
	return componentLabels[c]
}

// Components lists all nine components in order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Breakdown holds the per-component latencies of one RPC.
type Breakdown [NumComponents]time.Duration

// Total returns the RPC completion time (RCT): the sum of all components.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, v := range b {
		t += v
	}
	return t
}

// App returns the server application time.
func (b *Breakdown) App() time.Duration { return b[ServerApp] }

// Tax returns the RPC latency tax: everything except application
// processing (§3.1 of the paper).
func (b *Breakdown) Tax() time.Duration { return b.Total() - b[ServerApp] }

// TaxRatio returns Tax/Total in [0, 1], or 0 for a zero-duration RPC.
func (b *Breakdown) TaxRatio() float64 {
	total := b.Total()
	if total <= 0 {
		return 0
	}
	return float64(b.Tax()) / float64(total)
}

// Queue returns the total queuing latency: the four queue components.
func (b *Breakdown) Queue() time.Duration {
	return b[ClientSendQueue] + b[ServerRecvQueue] + b[ServerSendQueue] + b[ClientRecvQueue]
}

// Stack returns the RPC processing + network stack latency, request and
// response sides combined.
func (b *Breakdown) Stack() time.Duration { return b[ReqProcStack] + b[RespProcStack] }

// Wire returns the network wire latency, both directions.
func (b *Breakdown) Wire() time.Duration { return b[ReqNetworkWire] + b[RespNetworkWire] }

// Dominant returns the component with the largest latency.
func (b *Breakdown) Dominant() Component {
	best := Component(0)
	for c := 1; c < NumComponents; c++ {
		if b[c] > b[best] {
			best = Component(c)
		}
	}
	return best
}

// Add accumulates other into b (used when averaging breakdowns).
func (b *Breakdown) Add(other *Breakdown) {
	for i := range b {
		b[i] += other[i]
	}
}

// Scale divides every component by n; no-op when n <= 0.
func (b *Breakdown) Scale(n int) {
	if n <= 0 {
		return
	}
	for i := range b {
		b[i] /= time.Duration(n)
	}
}

// ErrorCode enumerates RPC outcome classes, following the canonical status
// space of Stubby/gRPC restricted to the classes in the paper's Fig. 23.
type ErrorCode uint8

// RPC outcome codes.
const (
	OK ErrorCode = iota
	Cancelled
	EntityNotFound
	NoResource
	NoPermission
	DeadlineExceeded
	Unavailable
	Internal
	InvalidArgument

	NumErrorCodes int = iota
)

var errorNames = [NumErrorCodes]string{
	"OK", "Cancelled", "EntityNotFound", "NoResource", "NoPermission",
	"DeadlineExceeded", "Unavailable", "Internal", "InvalidArgument",
}

// String returns the code name.
func (e ErrorCode) String() string {
	if int(e) >= NumErrorCodes {
		return fmt.Sprintf("ErrorCode(%d)", int(e))
	}
	return errorNames[e]
}

// IsError reports whether the code is a failure.
func (e ErrorCode) IsError() bool { return e != OK }

// Tier classifies a method by its state discipline, following the
// three-tier decomposition of "Complexity at Scale" (stateless service
// layers, stateful/database layers, and the memcached tier). The zero
// value is TierStateless, which is also what dumps written before the
// tier tag existed decode to.
type Tier uint8

// Method tiers.
const (
	TierStateless Tier = iota
	TierStateful
	TierCache

	NumTiers int = iota
)

var tierNames = [NumTiers]string{"stateless", "stateful", "cache"}

// String returns the tier name.
func (t Tier) String() string {
	if int(t) >= NumTiers {
		return fmt.Sprintf("Tier(%d)", int(t))
	}
	return tierNames[t]
}

// ParseTier maps a tier name back to its code; unknown names (including
// the empty string of pre-tier dumps) decode to TierStateless.
func ParseTier(s string) Tier {
	for i, n := range tierNames {
		if n == s {
			return Tier(i)
		}
	}
	return TierStateless
}

// Motif marks a span produced by one of the call-graph motif packs
// (internal/fleet): a shared dependency reached through fan-in, a
// cache-aside lookup that hit or missed, a sidecar proxy hop, or a
// cross-datacenter replication write. MotifNone (the zero value, omitted
// from dumps) is an ordinary call.
type Motif uint8

// Span motifs.
const (
	MotifNone Motif = iota
	MotifFanIn
	MotifCacheHit
	MotifCacheMiss
	MotifSidecar
	MotifReplica

	NumMotifs int = iota
)

var motifNames = [NumMotifs]string{"", "fanin", "cache_hit", "cache_miss", "sidecar", "replica"}

// String returns the motif name ("" for MotifNone).
func (m Motif) String() string {
	if int(m) >= NumMotifs {
		return fmt.Sprintf("Motif(%d)", int(m))
	}
	return motifNames[m]
}

// ParseMotif maps a motif name back to its code; unknown names decode to
// MotifNone.
func ParseMotif(s string) Motif {
	for i, n := range motifNames {
		if i > 0 && n == s {
			return Motif(i)
		}
	}
	return MotifNone
}

// TraceID identifies one RPC call graph; all spans of the graph share it.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// Span records one RPC: identity, placement, latency breakdown, sizes,
// CPU cost, and outcome. This is the unit of analysis for the entire
// characterization.
type Span struct {
	TraceID  TraceID
	SpanID   SpanID
	ParentID SpanID // 0 for the root RPC of a graph

	// LinkedParents are additional logical parents beyond ParentID:
	// production call graphs are DAGs, and a shared dependency reached
	// from several callers keeps one primary parent (ParentID, for
	// Dapper compatibility) while the extra in-edges ride here. Empty
	// for tree-shaped spans and for dumps written before the DAG model.
	LinkedParents []SpanID

	Method  string // fully qualified method, e.g. "networkdisk.Disk/Write"
	Service string // owning service, e.g. "networkdisk"

	// Tier is the method's state discipline (stateless/stateful/cache).
	Tier Tier

	// Motif marks spans synthesized by a graph-motif pack (sidecar hops,
	// cache lookups, replication writes, shared fan-in dependencies).
	Motif Motif

	ClientCluster string // cluster the caller ran in
	ServerCluster string // cluster the callee ran in

	Start     time.Duration // start offset within the observation window
	Breakdown Breakdown

	RequestBytes  int64
	ResponseBytes int64

	// CPUCycles is the normalized CPU cost of serving this RPC
	// (architecture-neutral units, as in Fig. 21). Zero means the sample
	// was not annotated with cost information, matching the paper's note
	// that not all Dapper samples carry CPU annotations.
	CPUCycles float64

	// CPUByCategory splits CPUCycles across the GWP taxonomy (Fig. 20),
	// indexed by gwp.Category. An all-zero array means the sample carries
	// only the total; consumers fall back to attributing everything to
	// gwp.Application, as dumps written before the split did implicitly.
	CPUByCategory [gwp.NumCategories]float64

	Err    ErrorCode
	Hedged bool // true if this call was a hedging duplicate
}

// Latency returns the RPC completion time.
func (s *Span) Latency() time.Duration { return s.Breakdown.Total() }

// HasCPUSplit reports whether the span carries the per-category cycle
// attribution (as opposed to only a total in CPUCycles).
func (s *Span) HasCPUSplit() bool {
	for _, v := range s.CPUByCategory {
		if v != 0 {
			return true
		}
	}
	return false
}

// SameCluster reports whether client and server were co-located in one
// cluster — the filter used throughout §3.3.
func (s *Span) SameCluster() bool { return s.ClientCluster == s.ServerCluster }

// Tree is one reconstructed RPC call tree.
//
// Deprecated: production call graphs are DAGs — a shared dependency can
// be reached from several parents — and Tree drops every in-edge beyond
// the primary one. Use Graph/BuildGraphs, which preserve LinkedParents;
// Tree remains for the paper's tree-shape figures (Figs. 4/5), which are
// defined over the primary-parent spanning tree.
type Tree struct {
	Root  *Node
	Spans int // total spans in the tree
}

// Node is one RPC within a tree, with links to its children.
type Node struct {
	Span     *Span
	Children []*Node
}

// Descendants returns the number of RPCs beneath this node (excluding the
// node itself).
func (n *Node) Descendants() int {
	total := 0
	for _, c := range n.Children {
		total += 1 + c.Descendants()
	}
	return total
}

// Depth returns the height of the subtree rooted at n (a leaf has depth 0).
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth() + 1; d > max {
			max = d
		}
	}
	return max
}

// Walk visits the node and all descendants pre-order, passing the number
// of ancestors (distance from the walk root).
func (n *Node) Walk(fn func(node *Node, ancestors int)) {
	n.walk(fn, 0)
}

func (n *Node) walk(fn func(node *Node, ancestors int), depth int) {
	fn(n, depth)
	for _, c := range n.Children {
		c.walk(fn, depth+1)
	}
}

// BuildTrees reconstructs call trees from a flat span collection. Spans
// whose parent is missing from the collection (e.g., dropped by sampling)
// are promoted to roots of their own partial trees, which is how Dapper
// handles incomplete traces. Children appear in insertion order.
//
// Deprecated: BuildTrees follows only primary-parent edges and silently
// drops LinkedParents, so DAG-shaped traces lose their fan-in structure.
// Use BuildGraphs for the full call-graph reconstruction; BuildTrees
// remains the spanning-tree view behind the Figs. 4/5 analyses.
func BuildTrees(spans []*Span) []*Tree {
	type key struct {
		t TraceID
		s SpanID
	}
	nodes := make(map[key]*Node, len(spans))
	for _, s := range spans {
		nodes[key{s.TraceID, s.SpanID}] = &Node{Span: s}
	}
	var roots []*Node
	for _, s := range spans {
		n := nodes[key{s.TraceID, s.SpanID}]
		if s.ParentID != 0 {
			if p, ok := nodes[key{s.TraceID, s.ParentID}]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	trees := make([]*Tree, 0, len(roots))
	for _, r := range roots {
		trees = append(trees, &Tree{Root: r, Spans: 1 + r.Descendants()})
	}
	return trees
}
