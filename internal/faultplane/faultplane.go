// Package faultplane is a deterministic, seed-driven fault-injection
// layer for the real RPC stack. It exists because the paper's error
// characterization (§7: canonical error-code mix, deadline-exceeded
// dominance, retry amplification under overload) cannot be reproduced
// from healthy traffic: the stack's retries, hedges, budgets, and
// breakers only reveal their economics when calls actually fail.
//
// An Injector is attached to a channel or server through
// stubby.Options.Faults and consulted once per attempt. Every decision
// is a pure function of (seed, scope, method, call sequence, attempt):
// two processes configured with the same seed make byte-identical
// decisions, independent of goroutine interleaving or wall-clock time,
// which is what lets `rpcbench -chaos` promise reproducible error-code
// distributions. "Time" for incident scheduling is therefore call
// progression — a window [From,To) covers calls whose sequence number
// falls in the range — not wall time, which would not replay.
//
// The fault vocabulary follows "Remote Procedure Call as a Managed
// System Service": the managed layer can reject (fail fast with a
// status), drop (swallow the message so the peer's deadline expires),
// delay (stall an attempt, saturating server workers in overload
// incidents), and corrupt (mangle payload bytes — the transport's AEAD
// turns on-wire corruption into connection death, so corruption is
// modeled at the payload boundary where application integrity checks
// catch it).
package faultplane

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpcscale/internal/trace"
)

// Scope distinguishes the two attachment points so a shared injector
// gives client- and server-side hooks independent decision streams.
type Scope uint8

// Injection scopes.
const (
	ScopeClient Scope = iota
	ScopeServer

	numScopes int = iota
)

func (s Scope) String() string {
	switch s {
	case ScopeClient:
		return "client"
	case ScopeServer:
		return "server"
	}
	return fmt.Sprintf("Scope(%d)", uint8(s))
}

// Rule is one set of per-method fault rates. Rates are probabilities in
// [0,1]; each action is rolled independently per attempt.
type Rule struct {
	// Methods selects the methods the rule applies to: "" or "*" match
	// everything, a trailing "*" is a prefix match, anything else is an
	// exact match.
	Methods string

	// RejectRate fails the attempt fast with RejectCode (default
	// Unavailable) — the signature of a server refusing work.
	RejectRate float64
	RejectCode trace.ErrorCode

	// DropRate swallows the attempt: the request (client scope) or the
	// response (server scope) never moves, so the caller's deadline
	// expires — the paper's dominant DeadlineExceeded class.
	DropRate float64

	// DelayRate stalls the attempt by Delay plus a uniform draw from
	// [0, DelayJitter). Server-side delays occupy a worker, which is how
	// overload incidents saturate the serving queue for real.
	DelayRate   float64
	Delay       time.Duration
	DelayJitter time.Duration

	// CorruptRate mangles payload bytes (see CorruptPayload).
	CorruptRate float64
}

// matches reports whether the rule selects method.
func (r *Rule) matches(method string) bool {
	switch {
	case r.Methods == "" || r.Methods == "*":
		return true
	case strings.HasSuffix(r.Methods, "*"):
		return strings.HasPrefix(method, strings.TrimSuffix(r.Methods, "*"))
	default:
		return r.Methods == method
	}
}

// Incident is a scheduled failure window: while a call's sequence number
// lies in [From, To), the incident's rules apply on top of the base
// rules. Windows are expressed in call progression, not wall time, so a
// schedule replays identically from the same seed (see package comment).
type Incident struct {
	Name     string
	From, To uint64
	Rules    []Rule
}

// active reports whether seq falls inside the incident window.
func (in *Incident) active(seq uint64) bool { return seq >= in.From && seq < in.To }

// Config assembles an injector.
type Config struct {
	// Seed drives every decision. Two injectors with equal Config make
	// identical decisions for identical (scope, method, seq, attempt).
	Seed uint64
	// Rules apply to every call.
	Rules []Rule
	// Incidents apply additionally inside their windows.
	Incidents []Incident
}

// Decision is what the stack does to one attempt. The zero value is
// "no fault".
type Decision struct {
	// Reject fails the attempt with this code; OK means no rejection.
	Reject trace.ErrorCode
	// Drop swallows the message so the peer's deadline expires.
	Drop bool
	// Delay stalls the attempt before it proceeds.
	Delay time.Duration
	// Corrupt mangles the payload before it proceeds.
	Corrupt bool
}

// Faulty reports whether the decision does anything.
func (d Decision) Faulty() bool {
	return d.Reject != trace.OK || d.Drop || d.Delay > 0 || d.Corrupt
}

// Key identifies one attempt for decision purposes. When Have is false
// (callers that did not thread a call ID through their context), the
// injector falls back to a per-(scope, method) sequence counter, which
// keeps single-threaded runs deterministic.
type Key struct {
	Seq     uint64 // logical call sequence number (deterministic when assigned by the driver)
	Have    bool
	Attempt uint32 // 0 = first attempt; retries increment, hedges set the high bit
}

// Stats counts decisions by action, per scope, for reports and tests.
type Stats struct {
	Decisions [2]uint64 // per scope: attempts consulted
	Rejects   [2]uint64
	Drops     [2]uint64
	Delays    [2]uint64
	Corrupts  [2]uint64
}

// Injector makes deterministic fault decisions. It is safe for
// concurrent use.
type Injector struct {
	cfg Config

	mu   sync.Mutex
	seqs map[seqKey]*atomic.Uint64

	decisions [numScopes]atomic.Uint64
	rejects   [numScopes]atomic.Uint64
	drops     [numScopes]atomic.Uint64
	delays    [numScopes]atomic.Uint64
	corrupts  [numScopes]atomic.Uint64
}

type seqKey struct {
	scope  Scope
	method string
}

// New returns an injector for the configuration.
func New(cfg Config) *Injector {
	for i := range cfg.Rules {
		if cfg.Rules[i].RejectCode == trace.OK {
			cfg.Rules[i].RejectCode = trace.Unavailable
		}
	}
	for i := range cfg.Incidents {
		for j := range cfg.Incidents[i].Rules {
			if cfg.Incidents[i].Rules[j].RejectCode == trace.OK {
				cfg.Incidents[i].Rules[j].RejectCode = trace.Unavailable
			}
		}
	}
	return &Injector{cfg: cfg, seqs: make(map[seqKey]*atomic.Uint64)}
}

// Seed returns the seed the injector was built with.
func (inj *Injector) Seed() uint64 { return inj.cfg.Seed }

// Decide returns the fault decision for one attempt. Decisions with a
// populated Key are pure: the same (scope, method, key) always yields
// the same decision regardless of call order.
func (inj *Injector) Decide(scope Scope, method string, key Key) Decision {
	if !key.Have {
		key.Seq = inj.nextSeq(scope, method)
	}
	inj.decisions[scope].Add(1)

	var d Decision
	roll := func(ruleIdx int, r *Rule) {
		if !r.matches(method) {
			return
		}
		rng := newDecisionRNG(inj.cfg.Seed, scope, method, key, ruleIdx)
		if d.Reject == trace.OK && rng.roll(actionReject, r.RejectRate) {
			d.Reject = r.RejectCode
		}
		if !d.Drop && rng.roll(actionDrop, r.DropRate) {
			d.Drop = true
		}
		if rng.roll(actionDelay, r.DelayRate) {
			delay := r.Delay
			if r.DelayJitter > 0 {
				delay += time.Duration(rng.draw(actionJitter) * float64(r.DelayJitter))
			}
			d.Delay += delay
		}
		if !d.Corrupt && rng.roll(actionCorrupt, r.CorruptRate) {
			d.Corrupt = true
		}
	}
	for i := range inj.cfg.Rules {
		roll(i, &inj.cfg.Rules[i])
	}
	for i := range inj.cfg.Incidents {
		in := &inj.cfg.Incidents[i]
		if !in.active(key.Seq) {
			continue
		}
		for j := range in.Rules {
			// Incident rules get their own index space so their draws do
			// not correlate with the base rules'.
			roll(1000+1000*i+j, &in.Rules[j])
		}
	}

	if d.Reject != trace.OK {
		// A rejected attempt never proceeds; the other actions are moot.
		d.Drop, d.Delay, d.Corrupt = false, 0, false
		inj.rejects[scope].Add(1)
	}
	if d.Drop {
		inj.drops[scope].Add(1)
	}
	if d.Delay > 0 {
		inj.delays[scope].Add(1)
	}
	if d.Corrupt {
		inj.corrupts[scope].Add(1)
	}
	return d
}

// nextSeq advances the fallback per-(scope, method) sequence.
func (inj *Injector) nextSeq(scope Scope, method string) uint64 {
	k := seqKey{scope, method}
	inj.mu.Lock()
	ctr := inj.seqs[k]
	if ctr == nil {
		ctr = new(atomic.Uint64)
		inj.seqs[k] = ctr
	}
	inj.mu.Unlock()
	return ctr.Add(1) - 1
}

// Stats snapshots the decision counters.
func (inj *Injector) Stats() Stats {
	var s Stats
	for sc := 0; sc < numScopes; sc++ {
		s.Decisions[sc] = inj.decisions[sc].Load()
		s.Rejects[sc] = inj.rejects[sc].Load()
		s.Drops[sc] = inj.drops[sc].Load()
		s.Delays[sc] = inj.delays[sc].Load()
		s.Corrupts[sc] = inj.corrupts[sc].Load()
	}
	return s
}

// CorruptPayload deterministically mangles p in place: a handful of
// bytes spread across the payload are XORed with a fixed mask, so an
// application-level integrity check (as in rpcbench's chaos handler)
// reliably detects the damage while the envelope still parses.
func CorruptPayload(p []byte) {
	if len(p) == 0 {
		return
	}
	for _, at := range [...]int{0, len(p) / 3, 2 * len(p) / 3, len(p) - 1} {
		p[at] ^= 0xA5
	}
}

// --- deterministic randomness ---

// Action tags separate the random draws of one attempt so the rates of
// different fault types never correlate.
const (
	actionReject = iota
	actionDrop
	actionDelay
	actionJitter
	actionCorrupt
)

// decisionRNG derives independent uniform draws for one (attempt, rule)
// pair via SplitMix64 over a hashed state.
type decisionRNG struct{ state uint64 }

func newDecisionRNG(seed uint64, scope Scope, method string, key Key, ruleIdx int) decisionRNG {
	h := seed
	h = mix(h ^ (uint64(scope) + 1))
	h = mix(h ^ hashString(method))
	h = mix(h ^ key.Seq)
	h = mix(h ^ uint64(key.Attempt))
	h = mix(h ^ uint64(ruleIdx))
	return decisionRNG{state: h}
}

// draw returns a uniform float in [0,1) for the action tag.
func (r decisionRNG) draw(action int) float64 {
	s := r.state ^ (uint64(action+1) * 0x9e3779b97f4a7c15)
	return float64(mix(s)>>11) / float64(1<<53)
}

// roll reports whether the action fires at the given rate.
func (r decisionRNG) roll(action int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return r.draw(action) < rate
}

// mix is the SplitMix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
