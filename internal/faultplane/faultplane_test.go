package faultplane

import (
	"sync"
	"testing"
	"time"

	"rpcscale/internal/trace"
)

func chaosConfig(seed uint64) Config {
	return Config{
		Seed: seed,
		Rules: []Rule{{
			RejectRate:  0.05,
			DropRate:    0.01,
			DelayRate:   0.05,
			Delay:       2 * time.Millisecond,
			DelayJitter: time.Millisecond,
			CorruptRate: 0.02,
		}},
		Incidents: []Incident{{
			Name: "overload",
			From: 100, To: 200,
			Rules: []Rule{{RejectRate: 0.5}},
		}},
	}
}

// Identical seeds must make identical decisions for identical keys.
func TestDeterministicAcrossInstances(t *testing.T) {
	a := New(chaosConfig(42))
	b := New(chaosConfig(42))
	for seq := uint64(0); seq < 500; seq++ {
		for attempt := uint32(0); attempt < 3; attempt++ {
			k := Key{Seq: seq, Have: true, Attempt: attempt}
			da := a.Decide(ScopeServer, "svc.M/Call", k)
			db := b.Decide(ScopeServer, "svc.M/Call", k)
			if da != db {
				t.Fatalf("seq %d attempt %d: %+v != %+v", seq, attempt, da, db)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// Decisions with explicit keys must not depend on the order or
// concurrency with which they are requested.
func TestInterleavingIndependence(t *testing.T) {
	ref := New(chaosConfig(7))
	want := make(map[uint64]Decision)
	for seq := uint64(0); seq < 300; seq++ {
		want[seq] = ref.Decide(ScopeClient, "svc.M/Call", Key{Seq: seq, Have: true})
	}

	inj := New(chaosConfig(7))
	var wg sync.WaitGroup
	errs := make(chan string, 300)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := uint64(w); seq < 300; seq += 4 {
				got := inj.Decide(ScopeClient, "svc.M/Call", Key{Seq: seq, Have: true})
				if got != want[seq] {
					errs <- "mismatch"
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if len(errs) > 0 {
		t.Fatalf("%d concurrent decisions diverged from sequential reference", len(errs))
	}
}

// Different seeds should produce different schedules.
func TestSeedsDiffer(t *testing.T) {
	a, b := New(chaosConfig(1)), New(chaosConfig(2))
	same := 0
	for seq := uint64(0); seq < 1000; seq++ {
		k := Key{Seq: seq, Have: true}
		if a.Decide(ScopeServer, "m", k) == b.Decide(ScopeServer, "m", k) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 1 and 2 produced identical 1000-call schedules")
	}
}

// Incident rules must fire only inside their window, and the observed
// rate must track the configured one.
func TestIncidentWindow(t *testing.T) {
	inj := New(Config{
		Seed:      3,
		Incidents: []Incident{{From: 100, To: 200, Rules: []Rule{{RejectRate: 1}}}},
	})
	for seq := uint64(0); seq < 300; seq++ {
		d := inj.Decide(ScopeServer, "m", Key{Seq: seq, Have: true})
		in := seq >= 100 && seq < 200
		if in && d.Reject != trace.Unavailable {
			t.Fatalf("seq %d inside incident not rejected: %+v", seq, d)
		}
		if !in && d.Faulty() {
			t.Fatalf("seq %d outside incident faulted: %+v", seq, d)
		}
	}
}

// Configured rates should be hit within sampling error.
func TestRatesApproximate(t *testing.T) {
	inj := New(Config{Seed: 11, Rules: []Rule{{RejectRate: 0.2}}})
	n, hits := 20000, 0
	for seq := 0; seq < n; seq++ {
		if inj.Decide(ScopeClient, "m", Key{Seq: uint64(seq), Have: true}).Reject != trace.OK {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.17 || got > 0.23 {
		t.Fatalf("reject rate %.3f, want ~0.2", got)
	}
}

// Method patterns: exact, prefix, and wildcard.
func TestMethodMatching(t *testing.T) {
	cases := []struct {
		pattern, method string
		want            bool
	}{
		{"", "a.B/C", true},
		{"*", "a.B/C", true},
		{"a.B/C", "a.B/C", true},
		{"a.B/C", "a.B/D", false},
		{"a.B/*", "a.B/C", true},
		{"a.B/*", "x.Y/Z", false},
	}
	for _, c := range cases {
		r := Rule{Methods: c.pattern}
		if got := r.matches(c.method); got != c.want {
			t.Errorf("pattern %q method %q: got %v want %v", c.pattern, c.method, got, c.want)
		}
	}
}

// Scopes draw from independent streams: the same key in different
// scopes should not always agree.
func TestScopeIndependence(t *testing.T) {
	inj := New(Config{Seed: 9, Rules: []Rule{{RejectRate: 0.5}}})
	same := 0
	for seq := uint64(0); seq < 1000; seq++ {
		k := Key{Seq: seq, Have: true}
		c := inj.Decide(ScopeClient, "m", k).Reject != trace.OK
		s := inj.Decide(ScopeServer, "m", k).Reject != trace.OK
		if c == s {
			same++
		}
	}
	if same > 600 || same < 400 {
		t.Fatalf("client and server streams agree %d/1000 times; want ~500", same)
	}
}

// Without an explicit key the fallback sequence keeps sequential runs
// deterministic.
func TestFallbackSequence(t *testing.T) {
	a, b := New(chaosConfig(5)), New(chaosConfig(5))
	for i := 0; i < 200; i++ {
		da := a.Decide(ScopeServer, "m", Key{})
		db := b.Decide(ScopeServer, "m", Key{})
		if da != db {
			t.Fatalf("call %d: %+v != %+v", i, da, db)
		}
	}
}

// A rejected attempt reports no other actions.
func TestRejectShadowsOthers(t *testing.T) {
	inj := New(Config{Seed: 1, Rules: []Rule{{
		RejectRate: 1, DropRate: 1, DelayRate: 1, Delay: time.Second, CorruptRate: 1,
	}}})
	d := inj.Decide(ScopeServer, "m", Key{Seq: 0, Have: true})
	if d.Reject != trace.Unavailable || d.Drop || d.Delay != 0 || d.Corrupt {
		t.Fatalf("reject should shadow other actions: %+v", d)
	}
}

func TestCorruptPayloadDetectable(t *testing.T) {
	p := make([]byte, 64)
	orig := append([]byte(nil), p...)
	CorruptPayload(p)
	diff := 0
	for i := range p {
		if p[i] != orig[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("CorruptPayload changed nothing")
	}
	CorruptPayload(nil) // must not panic
}
