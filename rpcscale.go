// Package rpcscale reproduces "A Cloud-Scale Characterization of Remote
// Procedure Calls" (Seemakhupt et al., SOSP 2023) as a runnable system:
// a Stubby-style RPC stack, Dapper-style tracing, Monarch-style
// monitoring, GWP-style CPU profiling, and a discrete fleet simulator
// with a method catalog calibrated to the paper's published anchors.
//
// This package is the public facade: it re-exports the stable entry
// points of the internal packages so downstream users can build fleets,
// generate datasets, and run the paper's analyses without reaching into
// internal paths.
//
// Simulated fleets:
//
//	topo := rpcscale.NewTopology(rpcscale.DefaultTopologyConfig())
//	cat := rpcscale.NewCatalog(rpcscale.CatalogConfig{Methods: 2000, Clusters: len(topo.Clusters), Seed: 1})
//	ds := rpcscale.Generate(cat, topo, rpcscale.DefaultRunConfig())
//	fmt.Print(rpcscale.Report(ds, rpcscale.ReportOptions{}))
//
// Live traffic through the real stack, observed by the telemetry plane
// (the paper's Monarch + Dapper + GWP trio over one RPC stack):
//
//	plane := rpcscale.NewTelemetry()
//	srv := rpcscale.NewServer(rpcscale.WithTelemetry(plane), rpcscale.WithCluster("local"))
//	srv.Register("greeter.Greeter/Hello", handler)
//	ch, _ := rpcscale.Dial(addr, rpcscale.WithTelemetry(plane), rpcscale.WithCluster("local"))
//	ch.Call(ctx, "greeter.Greeter/Hello", payload)
//	fmt.Print(rpcscale.Report(plane.Dataset(), rpcscale.ReportOptions{}))
package rpcscale

import (
	"context"
	"time"

	"rpcscale/internal/compressor"
	"rpcscale/internal/core"
	"rpcscale/internal/faultplane"
	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/stubby"
	"rpcscale/internal/telemetry"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// Fleet modeling.
type (
	// Topology is the simulated fleet: regions, datacenters, clusters.
	Topology = sim.Topology
	// TopologyConfig sizes a generated topology.
	TopologyConfig = sim.TopologyConfig
	// Catalog is the synthetic method catalog ("the fleet workload").
	Catalog = fleet.Catalog
	// CatalogConfig sizes a catalog.
	CatalogConfig = fleet.Config
	// Method is one RPC method with its behavioral models.
	Method = fleet.Method
	// Dataset is a generated study dataset (spans, trees, profiles).
	Dataset = workload.Dataset
	// RunConfig sizes a dataset generation run.
	RunConfig = workload.RunConfig
	// Generator produces spans for (method, cluster, time) triples.
	Generator = workload.Generator
	// ReportOptions selects what Report includes.
	ReportOptions = core.ReportOptions
	// MonarchDB is the time-series monitoring store.
	MonarchDB = monarch.DB
)

// Tracing, telemetry, and the RPC stack.
type (
	// Span is one traced RPC with its nine-component breakdown.
	Span = trace.Span
	// Breakdown is the nine-component latency decomposition (Fig. 9).
	Breakdown = trace.Breakdown
	// Collector gathers spans with head-based sampling.
	Collector = trace.Collector
	// Plane is the unified observability plane over the real stack:
	// Monarch time series, GWP cycle attribution, and Dapper span
	// retention fed by every call (see NewTelemetry, WithTelemetry).
	Plane = telemetry.Plane
	// TelemetryOption configures a Plane built with NewTelemetry.
	TelemetryOption = telemetry.Option
	// Channel is a client connection of the real RPC stack.
	Channel = stubby.Channel
	// Server is the real RPC stack's server.
	Server = stubby.Server
	// StubbyOptions configures the real stack.
	StubbyOptions = stubby.Options
	// Handler serves one RPC method on the real stack.
	Handler = stubby.Handler
	// Stream is one end of a bidirectional message stream (see
	// Channel.OpenStream and Server.RegisterBidi): Send/Recv exchange
	// messages under per-stream credit flow control on the zero-copy bulk
	// lane; CloseSend half-closes, Close abandons.
	Stream = stubby.Stream
	// BidiHandler serves a bidirectional streaming method.
	BidiHandler = stubby.BidiHandler
	// CallOption adjusts one call or stream (WithBulkLane,
	// WithBulkThreshold, WithStreamWindow); pass to Channel.Call or
	// Channel.OpenStream, or thread through a context with
	// ContextWithCallOptions.
	CallOption = stubby.CallOption
	// StreamHandler serves a server-streaming method.
	//
	// Deprecated: use BidiHandler with Server.RegisterBidi.
	StreamHandler = stubby.StreamHandler
	// ServerStream is the client's view of a server-streaming call.
	//
	// Deprecated: use Stream via Channel.OpenStream.
	ServerStream = stubby.ServerStream
	// Pool is a client-side channel pool with failover and cross-replica
	// hedging.
	Pool = stubby.Pool
	// RetryPolicy configures automatic retries of transient failures.
	RetryPolicy = stubby.RetryPolicy
	// ClientInterceptor wraps outgoing calls (see WithRetry).
	ClientInterceptor = stubby.ClientInterceptor
	// ServerInterceptor wraps handler invocation on the server.
	ServerInterceptor = stubby.ServerInterceptor
	// Compression selects a payload compression algorithm.
	Compression = compressor.Algorithm
)

// Fault injection and robustness.
type (
	// FaultInjector is a deterministic, seed-driven fault plane: attach
	// it to an endpoint with WithFaults and every drop, delay, reject,
	// and corruption replays identically from the same seed.
	FaultInjector = faultplane.Injector
	// FaultConfig is an injector's full fault schedule.
	FaultConfig = faultplane.Config
	// FaultRule is one probabilistic fault rule (rates per fault kind,
	// optionally restricted to a method pattern).
	FaultRule = faultplane.Rule
	// FaultIncident is a time-windowed burst of extra fault rules, the
	// window measured in call sequence numbers so it replays exactly.
	FaultIncident = faultplane.Incident
	// FaultStats is an injector's per-scope decision accounting.
	FaultStats = faultplane.Stats
	// RetryBudget is a token bucket capping client retry amplification,
	// shared across the channels it is installed on.
	RetryBudget = stubby.RetryBudget
	// BreakerConfig configures a per-(channel, method) circuit breaker.
	BreakerConfig = stubby.BreakerConfig
	// BreakerState is a circuit breaker's state (closed, open, half-open).
	BreakerState = stubby.BreakerState
	// RobustnessObserver receives retry, breaker, and shedding events;
	// the telemetry Plane implements it.
	RobustnessObserver = stubby.RobustnessObserver
)

// Circuit-breaker states.
const (
	BreakerClosed   = stubby.BreakerClosed
	BreakerOpen     = stubby.BreakerOpen
	BreakerHalfOpen = stubby.BreakerHalfOpen
)

// NewFaultInjector builds a deterministic fault injector from a schedule.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultplane.New(cfg) }

// NewRetryBudget returns a retry budget of maxTokens, refunding
// successCredit tokens per success. Non-positive arguments select the
// defaults (10 tokens, 0.1 credit — a sustained amplification cap of 1.1).
func NewRetryBudget(maxTokens, successCredit float64) *RetryBudget {
	return stubby.NewRetryBudget(maxTokens, successCredit)
}

// DefaultRetryPolicy retries transient failures up to 3 attempts with
// exponential backoff.
func DefaultRetryPolicy() RetryPolicy { return stubby.DefaultRetryPolicy() }

// ContextWithCallID tags ctx with a caller-assigned logical call ID. The
// fault plane keys its decisions on it, making injected faults
// independent of goroutine interleaving; without one, injectors fall
// back to arrival order.
func ContextWithCallID(ctx context.Context, id uint64) context.Context {
	return stubby.ContextWithCallID(ctx, id)
}

// Compression algorithms for WithCompression.
const (
	CompressionNone  = compressor.None
	CompressionFlate = compressor.Flate
)

// NewTopology generates a fleet topology.
func NewTopology(cfg TopologyConfig) *Topology { return sim.NewTopology(cfg) }

// DefaultTopologyConfig is a medium fleet (6 regions, 36 clusters).
func DefaultTopologyConfig() TopologyConfig { return sim.DefaultTopology() }

// NewCatalog generates a calibrated method catalog.
func NewCatalog(cfg CatalogConfig) *Catalog { return fleet.New(cfg) }

// DefaultCatalogConfig is the test-scale catalog (1000 methods).
func DefaultCatalogConfig() CatalogConfig { return fleet.DefaultConfig() }

// Generate runs the simulation pipeline and returns the study dataset.
// It is the context-free convenience form of GenerateContext.
func Generate(cat *Catalog, topo *Topology, cfg RunConfig) *Dataset {
	return workload.Generate(context.Background(), cat, topo, cfg)
}

// GenerateContext runs the simulation pipeline under a context: cancel it
// to stop every generation shard at its next sample boundary and get the
// partial dataset accumulated so far.
func GenerateContext(ctx context.Context, cat *Catalog, topo *Topology, cfg RunConfig) *Dataset {
	return workload.Generate(ctx, cat, topo, cfg)
}

// DefaultRunConfig is the fast test-scale run.
func DefaultRunConfig() RunConfig { return workload.DefaultRun() }

// NewGenerator builds a span generator for custom experiments.
func NewGenerator(cat *Catalog, topo *Topology, seed uint64) *Generator {
	return workload.NewGenerator(cat, topo, nil, seed)
}

// Report runs every analysis of the study and renders the complete
// figure-by-figure report.
func Report(ds *Dataset, opts ReportOptions) string { return core.FullReport(ds, opts) }

// --- Telemetry plane ---

// NewTelemetry returns an observability plane: a Monarch DB on the
// paper's 30-minute windows, a GWP profiler, a sampling span collector,
// and the stack byte accounting, all fed by every call of any channel or
// server carrying WithTelemetry(plane).
func NewTelemetry(opts ...TelemetryOption) *Plane { return telemetry.New(opts...) }

// WithWindow sets the plane's Monarch alignment window (default 30m).
func WithWindow(d time.Duration) TelemetryOption { return telemetry.WithWindow(d) }

// WithRetention sets the plane's Monarch retention (default 700 days).
func WithRetention(d time.Duration) TelemetryOption { return telemetry.WithRetention(d) }

// WithSampleEvery keeps 1-in-n traces in the plane's span store;
// Monarch series and GWP attribution still see every call.
func WithSampleEvery(n uint64) TelemetryOption { return telemetry.WithSampleEvery(n) }

// WithSpanCapacity bounds the plane's retained spans (0 = unbounded).
func WithSpanCapacity(n int) TelemetryOption { return telemetry.WithSpanCapacity(n) }

// Labels selects Monarch series in MonarchDB.Query.
type Labels = monarch.Labels

// Metric names the telemetry plane exports to its Monarch DB; query them
// with plane.Monarch().Query(metric, labels, from, to).
const (
	MetricRPCCount      = telemetry.MetricRPCCount      // Counter: service, method, client, server, code
	MetricRPCErrors     = telemetry.MetricRPCErrors     // Counter: service, method, code
	MetricLatency       = telemetry.MetricLatency       // Distribution (ns): service, method, cluster
	MetricReqBytes      = telemetry.MetricReqBytes      // Distribution: service, method
	MetricRespBytes     = telemetry.MetricRespBytes     // Distribution: service, method
	MetricServerCount   = telemetry.MetricServerCount   // Counter: method, cluster
	MetricServerApp     = telemetry.MetricServerApp     // Distribution (ns): method, cluster
	MetricClientCalls   = telemetry.MetricClientCalls   // Counter: method, code
	MetricClientLatency = telemetry.MetricClientLatency // Distribution (ns): method

	MetricRetries            = telemetry.MetricRetries            // Counter: method
	MetricRetriesSuppressed  = telemetry.MetricRetriesSuppressed  // Counter: method
	MetricBreakerTransitions = telemetry.MetricBreakerTransitions // Counter: method, from, to
	MetricShed               = telemetry.MetricShed               // Counter: method
)

// --- Monarch and collector constructors ---

// MonarchOption configures NewMonarchDB.
type MonarchOption = monarch.Option

// NewMonarchDB returns a standalone monitoring DB (the plane owns its
// own; this is for custom pipelines like the growth history).
func NewMonarchDB(opts ...MonarchOption) *MonarchDB { return monarch.NewDB(opts...) }

// WithMonarchWindow sets a standalone DB's alignment window.
func WithMonarchWindow(d time.Duration) MonarchOption { return monarch.WithWindow(d) }

// WithMonarchRetention sets a standalone DB's retention horizon.
func WithMonarchRetention(d time.Duration) MonarchOption { return monarch.WithRetention(d) }

// NewMonarch returns a monitoring DB with the paper's 30-minute window
// and 700-day retention.
//
// Deprecated: use NewMonarchDB; its options make the window and
// retention explicit.
func NewMonarch() *MonarchDB { return monarch.NewDB() }

// CollectorOption configures NewSpanCollector.
type CollectorOption = trace.CollectorOption

// NewSpanCollector returns a standalone span collector.
func NewSpanCollector(opts ...CollectorOption) *Collector { return trace.New(opts...) }

// WithCollectorSampleEvery keeps 1-in-n traces (head-based).
func WithCollectorSampleEvery(n uint64) CollectorOption { return trace.WithSampleEvery(n) }

// WithCollectorCapacity bounds retained spans (0 = unbounded).
func WithCollectorCapacity(n int) CollectorOption { return trace.WithCapacity(n) }

// NewCollector returns a span collector keeping 1-in-sampleEvery traces
// up to capacity spans (0 = unbounded).
//
// Deprecated: use NewSpanCollector with WithCollectorSampleEvery and
// WithCollectorCapacity, which name the magic numbers.
func NewCollector(sampleEvery uint64, capacity int) *Collector {
	return trace.NewCollector(sampleEvery, capacity)
}

// --- The real RPC stack ---

// stackConfig is the resolved configuration of Dial / NewServer /
// NewPool.
type stackConfig struct {
	opts          stubby.Options
	serverCluster string
	plane         *telemetry.Plane
	budget        *stubby.RetryBudget
}

// Option configures the real RPC stack's constructors (Dial, NewServer,
// NewPool).
type Option func(*stackConfig)

// WithTelemetry plugs an observability plane into the endpoint: spans,
// Monarch series, and GWP cycle attribution for every call flow into
// plane. On servers it also installs the server-side interceptor.
func WithTelemetry(p *Plane) Option {
	return func(c *stackConfig) { c.plane = p }
}

// WithCluster labels this endpoint's placement (appears as the client or
// server cluster on spans).
func WithCluster(name string) Option {
	return func(c *stackConfig) { c.opts.ClusterName = name }
}

// WithServerCluster labels the callee's placement on spans emitted by a
// dialed channel. Defaults to the channel's own cluster (loopback).
func WithServerCluster(name string) Option {
	return func(c *stackConfig) { c.serverCluster = name }
}

// WithCompression enables payload compression. Payloads under threshold
// bytes stay uncompressed (small RPCs lose more cycles than bytes);
// threshold <= 0 keeps the 512-byte default.
func WithCompression(algo Compression, threshold int) Option {
	return func(c *stackConfig) {
		c.opts.Compression = algo
		if threshold > 0 {
			c.opts.CompressThreshold = threshold
		}
	}
}

// WithCollector attaches a standalone span collector (independent of any
// telemetry plane).
func WithCollector(col *Collector) Option {
	return func(c *stackConfig) { c.opts.Collector = col }
}

// WithWorkers sets the server handler pool size.
func WithWorkers(n int) Option {
	return func(c *stackConfig) { c.opts.Workers = n }
}

// WithQueueLens bounds the client send queue and the server receive
// queue — where the paper's queuing latency lives. Zero keeps a default.
func WithQueueLens(send, recv int) Option {
	return func(c *stackConfig) {
		c.opts.SendQueueLen = send
		c.opts.RecvQueueLen = recv
	}
}

// WithDefaultDeadline applies to calls whose context has no deadline.
func WithDefaultDeadline(d time.Duration) Option {
	return func(c *stackConfig) { c.opts.DefaultDeadline = d }
}

// WithSecret sets the pre-shared transport secret (both ends must agree).
func WithSecret(secret []byte) Option {
	return func(c *stackConfig) { c.opts.Secret = secret }
}

// WithPoolPicker replaces a Pool's round-robin channel selection with a
// custom picker (e.g. least-in-flight). The picker is called with the live
// members and must be safe for concurrent use; Channel.InFlight and
// Channel.ServerLoad are the load signals it typically consults.
func WithPoolPicker(pick func(channels []*Channel) *Channel) Option {
	return func(c *stackConfig) { c.opts.PoolPicker = pick }
}

// WithStubbyOptions seeds the configuration from a full options struct;
// later Options override its fields.
func WithStubbyOptions(opts StubbyOptions) Option {
	return func(c *stackConfig) { c.opts = opts }
}

// WithFaults attaches a deterministic fault injector to the endpoint:
// channels consult it before each attempt, servers before each handled
// request. Build one with NewFaultInjector; the same seed replays the
// same fault schedule.
func WithFaults(inj *FaultInjector) Option {
	return func(c *stackConfig) { c.opts.Faults = inj }
}

// WithRetryPolicy makes dialed channels retry transient failures
// themselves per the policy, instead of every caller composing WithRetry
// by hand.
func WithRetryPolicy(policy RetryPolicy) Option {
	return func(c *stackConfig) { c.opts.Retry = &policy }
}

// WithRetryBudget caps the channel's retry amplification with a shared
// token bucket. If no retry policy was configured, the default one is
// installed to carry it. Share one budget across a pool's channels so
// the cap covers the aggregate stream.
func WithRetryBudget(b *RetryBudget) Option {
	return func(c *stackConfig) { c.budget = b }
}

// WithCircuitBreaker gives dialed channels a circuit breaker tracking
// state per method: consecutive transient failures open the circuit,
// which then fails fast until a cooldown probe succeeds.
func WithCircuitBreaker(cfg BreakerConfig) Option {
	return func(c *stackConfig) { c.opts.Breaker = &cfg }
}

// WithLoadShedding makes servers reject new requests with Unavailable
// once the receive queue holds at least threshold requests — failing
// fast under overload instead of queuing toward a missed deadline.
func WithLoadShedding(threshold int) Option {
	return func(c *stackConfig) { c.opts.ShedThreshold = threshold }
}

// WithDefaultStreamWindow sets the endpoint's default per-direction
// stream credit window in bytes (default 256 KiB); WithStreamWindow
// overrides per stream.
func WithDefaultStreamWindow(n int) Option {
	return func(c *stackConfig) { c.opts.StreamWindow = n }
}

// WithDefaultBulkThreshold routes unary payloads of at least bytes
// through the zero-copy bulk lane (default 16 KiB); negative disables the
// lane. WithBulkThreshold and WithBulkLane override per call.
func WithDefaultBulkThreshold(bytes int) Option {
	return func(c *stackConfig) { c.opts.BulkThreshold = bytes }
}

// WithConnStripes makes dialed channels open k TCP connections and
// stripe bulk calls and streams across them with per-call affinity
// (unary envelope traffic stays on stripe 0). k <= 1 keeps the single
// connection.
func WithConnStripes(k int) Option {
	return func(c *stackConfig) { c.opts.ConnStripes = k }
}

// WithCodecWorkers sets the per-connection seal/open worker pool size:
// n > 0 forces a pool of n, n < 0 forces the fully inline data plane,
// and 0 (the default) sizes the pool from GOMAXPROCS — disabled on a
// single-proc runtime.
func WithCodecWorkers(n int) Option {
	return func(c *stackConfig) { c.opts.CodecWorkers = n }
}

// WithAdaptiveCompression lets endpoints decide per method whether the
// configured compression is worth attempting, from an entropy probe on
// first bytes plus the method's observed compression ratios. No effect
// without WithCompression.
func WithAdaptiveCompression(on bool) Option {
	return func(c *stackConfig) { c.opts.AdaptiveCompression = on }
}

// --- Per-call options ---

// WithStreamWindow sets one stream's per-direction credit window in
// bytes. It bounds both the unconsumed bytes the peer may buffer and the
// size of a single stream message.
func WithStreamWindow(n int) CallOption { return stubby.WithStreamWindow(n) }

// WithBulkThreshold routes one call through the bulk lane if its payload
// is at least bytes long; negative disables the lane for the call.
func WithBulkThreshold(bytes int) CallOption { return stubby.WithBulkThreshold(bytes) }

// WithBulkLane forces the bulk lane on or off for one call regardless of
// payload size.
func WithBulkLane(enabled bool) CallOption { return stubby.WithBulkLane(enabled) }

// ContextWithCallOptions attaches per-call options to a context, for call
// sites that go through interceptor chains or retry wrappers rather than
// Channel.Call's variadic form.
func ContextWithCallOptions(ctx context.Context, opts ...CallOption) context.Context {
	return stubby.ContextWithCallOptions(ctx, opts...)
}

// FreeResponse hands a response buffer returned by Call back to the data
// plane's buffer pool. Bulk-lane responses arrive in a pooled buffer the
// caller owns outright; recycling it here keeps the receive path
// allocation-free under load. Optional — dropping the buffer is always
// legal. The caller must not touch buf afterwards.
func FreeResponse(buf []byte) { stubby.FreeResponse(buf) }

// resolve applies the options and wires the plane in.
func resolve(opts []Option) stackConfig {
	var c stackConfig
	for _, o := range opts {
		o(&c)
	}
	if c.budget != nil {
		policy := stubby.DefaultRetryPolicy()
		if c.opts.Retry != nil {
			policy = *c.opts.Retry
		}
		policy.Budget = c.budget
		c.opts.Retry = &policy
	}
	if c.plane != nil {
		c.opts = c.plane.Apply(c.opts)
	}
	if c.serverCluster == "" {
		c.serverCluster = c.opts.ClusterName
	}
	return c
}

// NewServer starts a real-stack RPC server (see examples/quickstart).
func NewServer(opts ...Option) *Server {
	c := resolve(opts)
	srv := stubby.NewServer(c.opts)
	if c.plane != nil {
		srv.Intercept(c.plane.ServerInterceptor(c.opts.ClusterName))
	}
	return srv
}

// Dial connects a real-stack client channel to addr.
func Dial(addr string, opts ...Option) (*Channel, error) {
	c := resolve(opts)
	return stubby.Dial(addr, c.serverCluster, c.opts)
}

// NewPool dials a channel pool of the given size to addr.
func NewPool(addr string, size int, opts ...Option) (*Pool, error) {
	c := resolve(opts)
	return stubby.NewPool(addr, c.serverCluster, size, c.opts)
}

// NewServerWithOptions starts a server from a bare options struct.
//
// Deprecated: use NewServer with functional options; WithStubbyOptions
// covers fully custom structs.
func NewServerWithOptions(opts StubbyOptions) *Server { return stubby.NewServer(opts) }

// DialWithOptions connects a channel from a bare options struct.
//
// Deprecated: use Dial with functional options.
func DialWithOptions(addr, serverCluster string, opts StubbyOptions) (*Channel, error) {
	return stubby.Dial(addr, serverCluster, opts)
}

// NewPoolWithOptions dials a pool from a bare options struct.
//
// Deprecated: use NewPool with functional options.
func NewPoolWithOptions(addr, serverCluster string, size int, opts StubbyOptions) (*Pool, error) {
	return stubby.NewPool(addr, serverCluster, size, opts)
}

// WithRetry returns a client interceptor implementing the policy; apply
// with Channel.Intercepted.
func WithRetry(policy RetryPolicy) ClientInterceptor { return stubby.WithRetry(policy) }
