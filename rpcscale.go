// Package rpcscale reproduces "A Cloud-Scale Characterization of Remote
// Procedure Calls" (Seemakhupt et al., SOSP 2023) as a runnable system:
// a Stubby-style RPC stack, Dapper-style tracing, Monarch-style
// monitoring, GWP-style CPU profiling, and a discrete fleet simulator
// with a method catalog calibrated to the paper's published anchors.
//
// This package is the public facade: it re-exports the stable entry
// points of the internal packages so downstream users can build fleets,
// generate datasets, and run the paper's analyses without reaching into
// internal paths.
//
//	topo := rpcscale.NewTopology(rpcscale.DefaultTopologyConfig())
//	cat := rpcscale.NewCatalog(rpcscale.CatalogConfig{Methods: 2000, Clusters: len(topo.Clusters), Seed: 1})
//	ds := rpcscale.Generate(cat, topo, rpcscale.DefaultRunConfig())
//	fmt.Print(rpcscale.Report(ds, rpcscale.ReportOptions{}))
//
// The real RPC stack (client channels, servers, hedging, tracing) is
// exposed through the Stubby* aliases; see examples/quickstart.
package rpcscale

import (
	"rpcscale/internal/core"
	"rpcscale/internal/fleet"
	"rpcscale/internal/monarch"
	"rpcscale/internal/sim"
	"rpcscale/internal/stubby"
	"rpcscale/internal/trace"
	"rpcscale/internal/workload"
)

// Fleet modeling.
type (
	// Topology is the simulated fleet: regions, datacenters, clusters.
	Topology = sim.Topology
	// TopologyConfig sizes a generated topology.
	TopologyConfig = sim.TopologyConfig
	// Catalog is the synthetic method catalog ("the fleet workload").
	Catalog = fleet.Catalog
	// CatalogConfig sizes a catalog.
	CatalogConfig = fleet.Config
	// Method is one RPC method with its behavioral models.
	Method = fleet.Method
	// Dataset is a generated study dataset (spans, trees, profiles).
	Dataset = workload.Dataset
	// RunConfig sizes a dataset generation run.
	RunConfig = workload.RunConfig
	// Generator produces spans for (method, cluster, time) triples.
	Generator = workload.Generator
	// ReportOptions selects what Report includes.
	ReportOptions = core.ReportOptions
	// MonarchDB is the time-series monitoring store.
	MonarchDB = monarch.DB
)

// Tracing and the RPC stack.
type (
	// Span is one traced RPC with its nine-component breakdown.
	Span = trace.Span
	// Breakdown is the nine-component latency decomposition (Fig. 9).
	Breakdown = trace.Breakdown
	// Collector gathers spans with head-based sampling.
	Collector = trace.Collector
	// Channel is a client connection of the real RPC stack.
	Channel = stubby.Channel
	// Server is the real RPC stack's server.
	Server = stubby.Server
	// StubbyOptions configures the real stack.
	StubbyOptions = stubby.Options
	// Handler serves one RPC method on the real stack.
	Handler = stubby.Handler
	// StreamHandler serves a server-streaming method.
	StreamHandler = stubby.StreamHandler
	// ServerStream is the client's view of a server-streaming call.
	ServerStream = stubby.ServerStream
	// Pool is a client-side channel pool with failover and cross-replica
	// hedging.
	Pool = stubby.Pool
	// RetryPolicy configures automatic retries of transient failures.
	RetryPolicy = stubby.RetryPolicy
	// ClientInterceptor wraps outgoing calls (see WithRetry).
	ClientInterceptor = stubby.ClientInterceptor
)

// NewTopology generates a fleet topology.
func NewTopology(cfg TopologyConfig) *Topology { return sim.NewTopology(cfg) }

// DefaultTopologyConfig is a medium fleet (6 regions, 36 clusters).
func DefaultTopologyConfig() TopologyConfig { return sim.DefaultTopology() }

// NewCatalog generates a calibrated method catalog.
func NewCatalog(cfg CatalogConfig) *Catalog { return fleet.New(cfg) }

// DefaultCatalogConfig is the test-scale catalog (1000 methods).
func DefaultCatalogConfig() CatalogConfig { return fleet.DefaultConfig() }

// Generate runs the simulation pipeline and returns the study dataset.
func Generate(cat *Catalog, topo *Topology, cfg RunConfig) *Dataset {
	return workload.Generate(cat, topo, cfg)
}

// DefaultRunConfig is the fast test-scale run.
func DefaultRunConfig() RunConfig { return workload.DefaultRun() }

// NewGenerator builds a span generator for custom experiments.
func NewGenerator(cat *Catalog, topo *Topology, seed uint64) *Generator {
	return workload.NewGenerator(cat, topo, nil, seed)
}

// NewMonarch returns a monitoring DB with the paper's 30-minute window
// and 700-day retention.
func NewMonarch() *MonarchDB { return monarch.New(0, 0) }

// Report runs every analysis of the study and renders the complete
// figure-by-figure report.
func Report(ds *Dataset, opts ReportOptions) string { return core.FullReport(ds, opts) }

// NewCollector returns a span collector keeping 1-in-sampleEvery traces
// up to capacity spans (0 = unbounded).
func NewCollector(sampleEvery uint64, capacity int) *Collector {
	return trace.NewCollector(sampleEvery, capacity)
}

// NewServer starts a real-stack RPC server (see examples/quickstart).
func NewServer(opts StubbyOptions) *Server { return stubby.NewServer(opts) }

// Dial connects a real-stack client channel to addr.
func Dial(addr, serverCluster string, opts StubbyOptions) (*Channel, error) {
	return stubby.Dial(addr, serverCluster, opts)
}

// NewPool dials a channel pool of the given size to addr.
func NewPool(addr, serverCluster string, size int, opts StubbyOptions) (*Pool, error) {
	return stubby.NewPool(addr, serverCluster, size, opts)
}

// WithRetry returns a client interceptor implementing the policy; apply
// with Channel.Intercepted.
func WithRetry(policy RetryPolicy) ClientInterceptor { return stubby.WithRetry(policy) }
